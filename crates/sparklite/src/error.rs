//! Error type shared across the engine, including the structured failure
//! causes the recovery layer classifies retries with.

use std::fmt;

/// Why a task attempt failed — the classification the retry machinery keys
/// on (see `executor.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A deterministic application error (a JSONiq `err:*`/`FORG*` raised
    /// inside a UDF via [`crate::rdd::task_bail`]). Re-running the task
    /// would fail identically, so these fail the job fast, attempt 1.
    App,
    /// A fault injected by the chaos plan ([`crate::conf::FaultPlan`]);
    /// transient by construction, always worth retrying.
    Injected,
    /// A raw panic with no classification. Treated like Spark treats an
    /// executor exception: retried up to the attempt budget.
    Panic,
}

/// Structured description of one failed task attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureCause {
    pub kind: FailureKind,
    /// 0-based attempt number that failed.
    pub attempt: u32,
    /// The partition (task) index within its stage.
    pub task: usize,
    /// The job/stage id the attempt belonged to.
    pub stage: u64,
    /// Best-effort human-readable message (for [`FailureKind::App`], the
    /// full `[CODE] …` rendering of the original application error).
    pub message: String,
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task for partition {} failed: {}", self.task, self.message)
    }
}

/// Failures surfaced by sparklite jobs and storage operations.
#[derive(Debug, Clone)]
pub enum SparkliteError {
    /// A task failed and was not retried (deterministic application error)
    /// or could not be retried. Carries the classified cause.
    TaskFailed(FailureCause),
    /// A task kept failing until its attempt budget
    /// ([`crate::conf::FaultPlan::max_task_failures`]) ran out; carries the
    /// *first* failure's cause and the number of attempts made.
    TaskRetriesExhausted { cause: FailureCause, attempts: u32 },
    /// A storage path does not exist.
    FileNotFound(String),
    /// A storage path already exists and overwrite was not requested.
    FileExists(String),
    /// An I/O failure from the local filesystem layer.
    Io(String),
    /// A malformed SQL query or unresolvable reference.
    Sql(String),
    /// A DataFrame operation referenced a missing column or mismatched type.
    Schema(String),
    /// Input data could not be decoded (e.g. malformed JSON line).
    Data(String),
}

impl fmt::Display for SparkliteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Kept format-compatible with the pre-recovery error surface:
            // "task for partition {p} failed: {message}".
            SparkliteError::TaskFailed(cause) => write!(f, "{cause}"),
            SparkliteError::TaskRetriesExhausted { cause, attempts } => {
                write!(
                    f,
                    "task for partition {} failed after {attempts} attempts: {}",
                    cause.task, cause.message
                )
            }
            SparkliteError::FileNotFound(p) => write!(f, "file not found: {p}"),
            SparkliteError::FileExists(p) => write!(f, "file already exists: {p}"),
            SparkliteError::Io(m) => write!(f, "I/O error: {m}"),
            SparkliteError::Sql(m) => write!(f, "SQL error: {m}"),
            SparkliteError::Schema(m) => write!(f, "schema error: {m}"),
            SparkliteError::Data(m) => write!(f, "data error: {m}"),
        }
    }
}

impl std::error::Error for SparkliteError {}

impl From<std::io::Error> for SparkliteError {
    fn from(e: std::io::Error) -> Self {
        SparkliteError::Io(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, SparkliteError>;

#[cfg(test)]
mod tests {
    use super::*;

    fn cause(kind: FailureKind) -> FailureCause {
        FailureCause { kind, attempt: 0, task: 3, stage: 7, message: "boom".into() }
    }

    #[test]
    fn display_is_backward_compatible() {
        let e = SparkliteError::TaskFailed(cause(FailureKind::App));
        assert_eq!(e.to_string(), "task for partition 3 failed: boom");
        let e =
            SparkliteError::TaskRetriesExhausted { cause: cause(FailureKind::Panic), attempts: 4 };
        assert_eq!(e.to_string(), "task for partition 3 failed after 4 attempts: boom");
    }
}
