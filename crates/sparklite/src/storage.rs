//! Storage layers: a simulated HDFS and a local-filesystem adapter.
//!
//! The paper stores its datasets on HDFS and S3 and lets Spark derive one
//! input partition per block. [`SimHdfs`] reproduces exactly that contract
//! in memory: files are sequences of **line-aligned text blocks** of roughly
//! the configured block size, each block becomes one partition of a
//! `text_file` RDD, and block reads can carry injected latency to model a
//! remote object store (the S3 flavour). Real HDFS splits blocks mid-line
//! and lets the input format stitch records back together; aligning at
//! write time is behaviourally equivalent for scan workloads and is
//! documented as a substitution in DESIGN.md.

use crate::error::{Result, SparkliteError};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Where a path resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathScheme {
    /// `hdfs://…` or `s3://…` — the in-memory block store.
    SimHdfs,
    /// `file://…` or a bare path — the local filesystem.
    LocalFs,
}

/// Splits a URI into its scheme and the store-internal key.
pub fn resolve_scheme(path: &str) -> (PathScheme, &str) {
    for p in ["hdfs://", "s3://", "s3a://"] {
        if let Some(rest) = path.strip_prefix(p) {
            return (PathScheme::SimHdfs, rest);
        }
    }
    (PathScheme::LocalFs, path.strip_prefix("file://").unwrap_or(path))
}

/// A text file stored as line-aligned blocks.
#[derive(Clone)]
struct StoredFile {
    blocks: Vec<Arc<str>>,
    bytes: usize,
}

/// The simulated HDFS: an in-memory namespace of block-structured text files.
///
/// All operations are thread-safe; reads take a shared lock so concurrent
/// tasks scan without contention.
pub struct SimHdfs {
    files: RwLock<BTreeMap<String, StoredFile>>,
    block_size: usize,
    read_latency_us: u64,
}

impl SimHdfs {
    pub fn new(block_size: usize, read_latency_us: u64) -> Self {
        SimHdfs {
            files: RwLock::new(BTreeMap::new()),
            block_size: block_size.max(1024),
            read_latency_us,
        }
    }

    /// Writes `text` as a new file, splitting into line-aligned blocks of
    /// roughly the configured block size.
    pub fn put_text(&self, path: &str, text: &str) -> Result<()> {
        let blocks = split_line_aligned(text, self.block_size);
        self.put_blocks(path, blocks)
    }

    /// Writes a file from pre-partitioned text chunks (e.g. the output
    /// partitions of a parallel job); each chunk becomes one block, like the
    /// `part-00000` files a Spark job leaves behind.
    pub fn put_parts(&self, path: &str, parts: Vec<String>) -> Result<()> {
        self.put_blocks(path, parts.into_iter().map(|p| Arc::from(p.as_str())).collect())
    }

    fn put_blocks(&self, path: &str, blocks: Vec<Arc<str>>) -> Result<()> {
        let mut files = self.files.write();
        if files.contains_key(path) {
            return Err(SparkliteError::FileExists(path.to_string()));
        }
        let bytes = blocks.iter().map(|b| b.len()).sum();
        files.insert(path.to_string(), StoredFile { blocks, bytes });
        Ok(())
    }

    /// Removes a file; succeeds even if absent.
    pub fn delete(&self, path: &str) {
        self.files.write().remove(path);
    }

    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// Number of blocks (= input partitions) of a file.
    pub fn num_blocks(&self, path: &str) -> Result<usize> {
        self.files
            .read()
            .get(path)
            .map(|f| f.blocks.len())
            .ok_or_else(|| SparkliteError::FileNotFound(path.to_string()))
    }

    /// Total size in bytes.
    pub fn len(&self, path: &str) -> Result<usize> {
        self.files
            .read()
            .get(path)
            .map(|f| f.bytes)
            .ok_or_else(|| SparkliteError::FileNotFound(path.to_string()))
    }

    /// Fetches one block, paying the configured read latency. Called from
    /// inside executor tasks, so the latency is paid once per partition scan
    /// in parallel — the same cost profile as remote block fetches.
    pub fn read_block(&self, path: &str, block: usize) -> Result<Arc<str>> {
        let b = {
            let files = self.files.read();
            let f =
                files.get(path).ok_or_else(|| SparkliteError::FileNotFound(path.to_string()))?;
            f.blocks.get(block).cloned().ok_or_else(|| {
                SparkliteError::Io(format!("block {block} out of range for {path}"))
            })?
        };
        if self.read_latency_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.read_latency_us));
        }
        Ok(b)
    }

    /// Reads a whole file back as a single string (driver-side convenience).
    pub fn read_to_string(&self, path: &str) -> Result<String> {
        let files = self.files.read();
        let f = files.get(path).ok_or_else(|| SparkliteError::FileNotFound(path.to_string()))?;
        let mut out = String::with_capacity(f.bytes);
        for b in &f.blocks {
            out.push_str(b);
        }
        Ok(out)
    }

    /// Lists paths under a prefix.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files.read().keys().filter(|k| k.starts_with(prefix)).cloned().collect()
    }
}

/// Splits text into blocks of roughly `block_size` bytes, cutting only at
/// line boundaries so no record spans two blocks.
pub fn split_line_aligned(text: &str, block_size: usize) -> Vec<Arc<str>> {
    if text.is_empty() {
        return Vec::new();
    }
    let bytes = text.as_bytes();
    let mut blocks = Vec::with_capacity(text.len() / block_size + 1);
    let mut start = 0usize;
    while start < bytes.len() {
        let tentative_end = (start + block_size).min(bytes.len());
        let end = if tentative_end == bytes.len() {
            bytes.len()
        } else {
            // Extend to the next newline so the last line stays whole.
            match bytes[tentative_end..].iter().position(|&b| b == b'\n') {
                Some(off) => tentative_end + off + 1,
                None => bytes.len(),
            }
        };
        blocks.push(Arc::from(&text[start..end]));
        start = end;
    }
    blocks
}

/// Reads a local file and splits it into line-aligned in-memory blocks, so
/// local inputs get the same partitioned scan treatment as simulated HDFS.
pub fn read_local_blocks(path: &str, block_size: usize) -> Result<Vec<Arc<str>>> {
    let text = std::fs::read_to_string(path).map_err(|e| match e.kind() {
        std::io::ErrorKind::NotFound => SparkliteError::FileNotFound(path.to_string()),
        _ => SparkliteError::Io(format!("{path}: {e}")),
    })?;
    Ok(split_line_aligned(&text, block_size))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_resolution() {
        assert_eq!(resolve_scheme("hdfs:///data/x.json"), (PathScheme::SimHdfs, "/data/x.json"));
        assert_eq!(resolve_scheme("s3://bucket/x"), (PathScheme::SimHdfs, "bucket/x"));
        assert_eq!(resolve_scheme("file:///tmp/x"), (PathScheme::LocalFs, "/tmp/x"));
        assert_eq!(resolve_scheme("/tmp/x"), (PathScheme::LocalFs, "/tmp/x"));
    }

    #[test]
    fn blocks_are_line_aligned() {
        let lines: Vec<String> = (0..100).map(|i| format!("{{\"n\": {i}}}")).collect();
        let text = lines.join("\n");
        let blocks = split_line_aligned(&text, 64);
        assert!(blocks.len() > 1);
        // Re-joining restores the file exactly.
        let joined: String = blocks.iter().map(|b| b.as_ref()).collect();
        assert_eq!(joined, text);
        // Every block except the last ends at a line boundary.
        for b in &blocks[..blocks.len() - 1] {
            assert!(b.ends_with('\n'), "block should end with a newline: {b:?}");
        }
        // No line is split across blocks.
        for b in &blocks {
            for line in b.lines() {
                assert!(line.starts_with('{') && line.ends_with('}'), "torn line: {line:?}");
            }
        }
    }

    #[test]
    fn hdfs_roundtrip() {
        let fs = SimHdfs::new(1024, 0);
        let text = (0..200).map(|i| format!("line {i}\n")).collect::<String>();
        fs.put_text("/data/t.txt", &text).unwrap();
        assert!(fs.exists("/data/t.txt"));
        assert!(fs.num_blocks("/data/t.txt").unwrap() >= 2);
        assert_eq!(fs.read_to_string("/data/t.txt").unwrap(), text);
        assert_eq!(fs.len("/data/t.txt").unwrap(), text.len());

        assert!(matches!(fs.put_text("/data/t.txt", "x"), Err(SparkliteError::FileExists(_))));
        fs.delete("/data/t.txt");
        assert!(!fs.exists("/data/t.txt"));
        assert!(matches!(fs.read_block("/data/t.txt", 0), Err(SparkliteError::FileNotFound(_))));
    }

    #[test]
    fn parts_become_blocks() {
        let fs = SimHdfs::new(1024, 0);
        fs.put_parts("/out", vec!["a\nb\n".into(), "c\n".into()]).unwrap();
        assert_eq!(fs.num_blocks("/out").unwrap(), 2);
        assert_eq!(fs.read_block("/out", 1).unwrap().as_ref(), "c\n");
    }

    #[test]
    fn listing() {
        let fs = SimHdfs::new(1024, 0);
        fs.put_text("/a/1", "x").unwrap();
        fs.put_text("/a/2", "y").unwrap();
        fs.put_text("/b/1", "z").unwrap();
        assert_eq!(fs.list("/a/").len(), 2);
    }

    #[test]
    fn empty_file_has_no_blocks() {
        assert!(split_line_aligned("", 1024).is_empty());
    }
}
