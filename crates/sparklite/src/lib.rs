//! `sparklite` — a from-scratch miniature Spark.
//!
//! The Rumble paper maps JSONiq onto two Spark abstractions: **RDDs** (flat,
//! lazily transformed, partitioned collections) for sequences of items, and
//! **DataFrames** (schema-ful columnar tables driven by the Catalyst
//! optimizer) for FLWOR tuple streams. Rust has no Spark bindings, so this
//! crate rebuilds those abstractions natively:
//!
//! * [`SparkliteContext`] — the driver: holds the executor pool (each worker
//!   thread models one executor core), the shuffle service, the storage
//!   layer, and engine-wide metrics.
//! * [`rdd::Rdd`] — a lazy DAG of transformations over partitioned data with
//!   narrow and wide (shuffle) dependencies; actions (`collect`, `count`,
//!   `take`, `reduce`, `save_as_text_file`) schedule one task per partition.
//! * [`dataframe::DataFrame`] — a columnar table with a logical plan and a
//!   rule-based optimizer (projection fusion, filter pushdown, column
//!   pruning), plus the operators the FLWOR mapping needs: extended
//!   projection with UDFs, `EXPLODE`, filter, `GROUP BY` with
//!   `COLLECT_LIST`/`COUNT`/`FIRST`, sampled range-partitioned `ORDER BY`,
//!   and the parallel zip-with-index trick for `count` clauses.
//! * [`sql`] — a small SQL dialect over DataFrames and the JSON schema
//!   inference used by the Spark-SQL baseline (`read.json`).
//! * [`storage`] — a simulated HDFS (in-memory block store with partitioned
//!   scans) and a local-filesystem layer.
//! * [`faults`] + [`conf::FaultPlan`] — the fault-tolerance subsystem:
//!   seeded deterministic chaos injection (task kills, lost shuffle outputs,
//!   storage faults, stragglers) driving a recovery layer with per-task
//!   retries, lineage-based recomputation, and speculative execution.
//! * [`events`] — the observability subsystem: a typed scheduler event bus
//!   (Spark's `SparkListener`) from which the global [`Metrics`] are
//!   derived, with per-job/stage/task timelines, JSONL event logs and
//!   Chrome-trace export.
//!
//! # Quick start
//!
//! ```
//! use sparklite::{SparkliteConf, SparkliteContext};
//!
//! let sc = SparkliteContext::new(SparkliteConf::default().with_executors(4));
//! let rdd = sc.parallelize((1..=100).collect::<Vec<i64>>(), 8);
//! let sum: i64 = rdd.filter(|x| x % 2 == 0).map(|x| x * 10).reduce(|a, b| a + b).unwrap().unwrap();
//! assert_eq!(sum, 25_500);
//! ```

pub mod cache;
pub mod conf;
pub mod context;
pub mod dataframe;
pub mod dist;
pub mod error;
pub mod events;
pub mod executor;
pub mod faults;
pub mod rdd;
pub mod sql;
pub mod storage;

pub use cache::{CacheCodec, StorageLevel};
pub use conf::{DistConf, DistMode, FaultPlan, OptimizerConf, SparkliteConf};
pub use context::SparkliteContext;
pub use error::{FailureCause, FailureKind, Result, SparkliteError};
pub use events::{
    Event, EventBus, EventCollector, EventListener, ExecutorStreamMerge, JobSummary, TaskCounters,
    Timeline,
};
pub use executor::{histogram_percentile, Metrics, MetricsSnapshot, TaskMetrics, HIST_BUCKETS};

/// Everything that flows through an RDD: cheaply cloneable, thread-safe data.
pub trait Data: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Data for T {}
