//! JSON schema inference — sparklite's `spark.read.json`.
//!
//! Spark SQL scans the whole dataset once, unifies per-field types, and
//! forces anything heterogeneous into strings (the paper's Figure 6: the
//! type information of messy data is lost, absent values become NULL).
//! This module reproduces that pipeline faithfully, including the extra
//! full pass over the data — which is exactly why Rumble beats Spark SQL on
//! the filter query (§6.2: "no schema inference is needed").

use crate::dataframe::{DataFrame, DataType, Field, Row, Schema, Value};
use crate::error::{Result, SparkliteError};
use crate::rdd::Rdd;
use crate::SparkliteContext;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The type lattice used during inference.
#[derive(Debug, Clone, PartialEq)]
pub enum Inferred {
    Null,
    Bool,
    Int,
    Double,
    Str,
    Array(Box<Inferred>),
}

impl Inferred {
    /// Least upper bound: `Null` is the identity, `Int ∨ Double = Double`,
    /// arrays unify element-wise, everything else collapses to `Str`.
    pub fn unify(self, other: Inferred) -> Inferred {
        use Inferred::*;
        match (self, other) {
            (Null, x) | (x, Null) => x,
            (Int, Int) => Int,
            (Int, Double) | (Double, Int) | (Double, Double) => Double,
            (Bool, Bool) => Bool,
            (Str, Str) => Str,
            (Array(a), Array(b)) => Array(Box::new(a.unify(*b))),
            _ => Str,
        }
    }

    fn dtype(&self) -> DataType {
        match self {
            Inferred::Null | Inferred::Str => DataType::Str,
            Inferred::Bool => DataType::Bool,
            Inferred::Int => DataType::I64,
            Inferred::Double => DataType::F64,
            Inferred::Array(_) => DataType::List,
        }
    }
}

fn infer_value(v: &jsonlite::Value) -> Inferred {
    match v {
        jsonlite::Value::Null => Inferred::Null,
        jsonlite::Value::Bool(_) => Inferred::Bool,
        jsonlite::Value::Int(_) => Inferred::Int,
        jsonlite::Value::Decimal(_) | jsonlite::Value::Double(_) => Inferred::Double,
        jsonlite::Value::Str(_) => Inferred::Str,
        jsonlite::Value::Array(items) => Inferred::Array(Box::new(
            items.iter().map(infer_value).fold(Inferred::Null, |acc, t| acc.unify(t)),
        )),
        // Nested objects serialize to strings (Spark would build a struct
        // column; our DataFrame has no struct type — documented in
        // DESIGN.md, and no paper query reads nested objects through SQL).
        jsonlite::Value::Object(_) => Inferred::Str,
    }
}

/// Result of the inference pass: field name → unified type, fields sorted
/// alphabetically like Spark's JSON reader.
pub fn infer_schema(lines: &Rdd<Arc<str>>) -> Result<Vec<(String, Inferred)>> {
    let partials = lines
        .map(|line| {
            let parsed = jsonlite::parse_value(&line)
                .unwrap_or_else(|e| crate::rdd::task_bail(format!("malformed JSON line: {e}")));
            let mut fields: BTreeMap<String, Inferred> = BTreeMap::new();
            if let jsonlite::Value::Object(members) = parsed {
                for (k, v) in members {
                    let t = infer_value(&v);
                    fields
                        .entry(k)
                        .and_modify(|old| {
                            *old = std::mem::replace(old, Inferred::Null).unify(t.clone())
                        })
                        .or_insert(t);
                }
            }
            fields
        })
        .aggregate(
            BTreeMap::<String, Inferred>::new(),
            |mut acc, fields| {
                for (k, t) in fields {
                    match acc.remove(&k) {
                        Some(old) => {
                            acc.insert(k, old.unify(t));
                        }
                        None => {
                            acc.insert(k, t);
                        }
                    }
                }
                acc
            },
            |mut a, b| {
                for (k, t) in b {
                    match a.remove(&k) {
                        Some(old) => {
                            a.insert(k, old.unify(t));
                        }
                        None => {
                            a.insert(k, t);
                        }
                    }
                }
                a
            },
        )?;
    Ok(partials.into_iter().collect())
}

/// Coerces a parsed JSON value into the inferred column type; values that
/// do not fit are serialized back to their JSON text (Figure 6: `[4]`
/// becomes the string `"[4]"`).
fn coerce(v: &jsonlite::Value, t: &Inferred) -> Value {
    match (v, t) {
        (jsonlite::Value::Null, _) => Value::Null,
        (jsonlite::Value::Bool(b), Inferred::Bool) => Value::Bool(*b),
        (jsonlite::Value::Int(i), Inferred::Int) => Value::I64(*i),
        (jsonlite::Value::Int(i), Inferred::Double) => Value::F64(*i as f64),
        (jsonlite::Value::Decimal(_), Inferred::Double)
        | (jsonlite::Value::Double(_), Inferred::Double) => {
            v.as_f64().map(Value::F64).unwrap_or(Value::Null)
        }
        (jsonlite::Value::Str(s), Inferred::Str) => Value::str(s),
        (jsonlite::Value::Array(items), Inferred::Array(elem)) => {
            Value::List(Arc::new(items.iter().map(|i| coerce(i, elem)).collect()))
        }
        // Everything else is stringified — the data-independence leak the
        // paper illustrates.
        (_, Inferred::Str) => Value::str(v.to_string()),
        _ => Value::str(v.to_string()),
    }
}

/// Reads a JSON Lines file into a DataFrame, inferring the schema with a
/// dedicated first pass (like `spark.read.json`).
pub fn read_json(ctx: &SparkliteContext, path: &str) -> Result<DataFrame> {
    let lines = ctx.text_file(path)?;
    let inferred = infer_schema(&lines)?;
    if inferred.is_empty() {
        return Err(SparkliteError::Data(format!("no JSON objects found in {path}")));
    }
    let fields: Vec<Field> = inferred.iter().map(|(name, t)| Field::new(name, t.dtype())).collect();
    let schema = Schema::new(fields);
    let inferred = Arc::new(inferred);
    let rows: Rdd<Row> = lines.map(move |line| {
        let parsed = jsonlite::parse_value(&line)
            .unwrap_or_else(|e| crate::rdd::task_bail(format!("malformed JSON line: {e}")));
        let members: &[(String, jsonlite::Value)] = match &parsed {
            jsonlite::Value::Object(m) => m,
            _ => &[],
        };
        inferred
            .iter()
            .map(|(name, t)| {
                members
                    .iter()
                    .rev()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| coerce(v, t))
                    .unwrap_or(Value::Null)
            })
            .collect()
    });
    Ok(DataFrame::from_rdd(schema, &rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SparkliteConf, SparkliteContext};

    fn ctx() -> SparkliteContext {
        SparkliteContext::new(SparkliteConf::default().with_executors(2))
    }

    #[test]
    fn homogeneous_dataset_keeps_types() {
        let ctx = ctx();
        let text = "\
{\"name\": \"a\", \"age\": 30, \"score\": 1.5, \"ok\": true}\n\
{\"name\": \"b\", \"age\": 40, \"score\": 2.5, \"ok\": false}\n";
        ctx.hdfs().put_text("/t.json", text).unwrap();
        let df = read_json(&ctx, "hdfs:///t.json").unwrap();
        // Fields are alphabetical, like Spark.
        let names: Vec<&str> = df.schema().fields().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["age", "name", "ok", "score"]);
        assert_eq!(df.schema().field("age").unwrap().dtype, DataType::I64);
        assert_eq!(df.schema().field("score").unwrap().dtype, DataType::F64);
        assert_eq!(df.schema().field("ok").unwrap().dtype, DataType::Bool);
        let rows = df.collect_rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::I64(30));
    }

    #[test]
    fn figure_6_heterogeneous_dataset_collapses_to_strings() {
        // The exact dataset of the paper's Figure 5.
        let ctx = ctx();
        let text = "\
{\"foo\": \"1\", \"bar\":2, \"foobar\": true}\n\
{\"foo\": \"2\", \"bar\":[4], \"foobar\": \"false\"}\n\
{\"foo\": \"3\", \"bar\":\"6\"}\n";
        ctx.hdfs().put_text("/f5.json", text).unwrap();
        let df = read_json(&ctx, "hdfs:///f5.json").unwrap();
        // bar: int|array|string → string; foobar: bool|string → string,
        // absent → NULL. That is Figure 6.
        assert_eq!(df.schema().field("bar").unwrap().dtype, DataType::Str);
        assert_eq!(df.schema().field("foobar").unwrap().dtype, DataType::Str);
        let rows = df.collect_rows().unwrap();
        let bar_idx = df.schema().index_of("bar").unwrap();
        let foobar_idx = df.schema().index_of("foobar").unwrap();
        assert_eq!(rows[0][bar_idx], Value::str("2"));
        assert_eq!(rows[1][bar_idx], Value::str("[4]"));
        assert_eq!(rows[2][bar_idx], Value::str("6"));
        assert_eq!(rows[0][foobar_idx], Value::str("true"));
        assert_eq!(rows[1][foobar_idx], Value::str("false"));
        assert_eq!(rows[2][foobar_idx], Value::Null);
    }

    #[test]
    fn int_double_unify_to_double() {
        let ctx = ctx();
        let text = "{\"x\": 1}\n{\"x\": 2.5}\n";
        ctx.hdfs().put_text("/d.json", text).unwrap();
        let df = read_json(&ctx, "hdfs:///d.json").unwrap();
        assert_eq!(df.schema().field("x").unwrap().dtype, DataType::F64);
        let rows = df.collect_rows().unwrap();
        assert_eq!(rows[0][0], Value::F64(1.0));
        assert_eq!(rows[1][0], Value::F64(2.5));
    }

    #[test]
    fn arrays_unify_elementwise() {
        let ctx = ctx();
        let text = "{\"a\": [1, 2]}\n{\"a\": [3]}\n";
        ctx.hdfs().put_text("/a.json", text).unwrap();
        let df = read_json(&ctx, "hdfs:///a.json").unwrap();
        assert_eq!(df.schema().field("a").unwrap().dtype, DataType::List);
        let rows = df.collect_rows().unwrap();
        assert_eq!(rows[0][0].as_list().unwrap().as_ref(), &vec![Value::I64(1), Value::I64(2)]);
    }

    #[test]
    fn nested_objects_stringify() {
        let ctx = ctx();
        let text = "{\"o\": {\"k\": 1}}\n";
        ctx.hdfs().put_text("/o.json", text).unwrap();
        let df = read_json(&ctx, "hdfs:///o.json").unwrap();
        assert_eq!(df.schema().field("o").unwrap().dtype, DataType::Str);
        let rows = df.collect_rows().unwrap();
        assert!(rows[0][0].as_str().unwrap().contains("\"k\""));
    }

    #[test]
    fn malformed_json_fails_the_job() {
        let ctx = ctx();
        ctx.hdfs().put_text("/bad.json", "{\"a\": 1}\nnot json\n").unwrap();
        assert!(read_json(&ctx, "hdfs:///bad.json").is_err());
    }
}
