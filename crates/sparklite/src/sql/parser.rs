//! A small SQL dialect: tokenizer, AST, and recursive-descent parser.
//!
//! Coverage is what the Spark-SQL baseline queries of the paper need, plus
//! a little headroom: `SELECT` lists with expressions, aliases and
//! aggregates, `WHERE` with three-valued boolean logic, `GROUP BY`,
//! `ORDER BY ... ASC|DESC`, and `LIMIT`.

use crate::error::{Result, SparkliteError};

/// SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(char),
    /// Two-character operators: `<=`, `>=`, `<>`, `!=`.
    Op2([char; 2]),
}

fn err(msg: impl Into<String>) -> SparkliteError {
    SparkliteError::Sql(msg.into())
}

/// Tokenizes a SQL string. Keywords stay `Ident`s (matched
/// case-insensitively by the parser); strings use single quotes with `''`
/// escaping.
pub fn tokenize(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(err("unterminated string literal")),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let ch = input[i..].chars().next().expect("in bounds");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Tok::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len() && bytes[i] == b'.' {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    out.push(Tok::Float(text.parse().map_err(|_| err("bad number"))?));
                } else {
                    out.push(Tok::Int(text.parse().map_err(|_| err("bad number"))?));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | '.')
                {
                    i += 1;
                }
                out.push(Tok::Ident(input[start..i].to_string()));
            }
            '<' | '>' | '!' => {
                let next = bytes.get(i + 1).map(|&b| b as char);
                match (c, next) {
                    ('<', Some('=')) => {
                        out.push(Tok::Op2(['<', '=']));
                        i += 2;
                    }
                    ('>', Some('=')) => {
                        out.push(Tok::Op2(['>', '=']));
                        i += 2;
                    }
                    ('<', Some('>')) => {
                        out.push(Tok::Op2(['<', '>']));
                        i += 2;
                    }
                    ('!', Some('=')) => {
                        out.push(Tok::Op2(['!', '=']));
                        i += 2;
                    }
                    ('!', _) => return Err(err("unexpected '!'")),
                    _ => {
                        out.push(Tok::Symbol(c));
                        i += 1;
                    }
                }
            }
            '=' | '+' | '-' | '*' | '/' | '%' | '(' | ')' | ',' => {
                out.push(Tok::Symbol(c));
                i += 1;
            }
            _ => return Err(err(format!("unexpected character '{c}' in SQL"))),
        }
    }
    Ok(out)
}

/// A parsed scalar or aggregate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    Col(String),
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
    Bin(Box<SqlExpr>, SqlBinOp, Box<SqlExpr>),
    Not(Box<SqlExpr>),
    IsNull {
        expr: Box<SqlExpr>,
        negated: bool,
    },
    /// `COUNT(*)`, `COUNT(col)`, `SUM(col)`, … Only allowed at the top of a
    /// select item.
    AggCall {
        func: String,
        arg: Option<String>,
        star: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlBinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: SqlExpr,
    pub alias: Option<String>,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlQuery {
    /// Empty means `SELECT *`.
    pub select: Vec<SelectItem>,
    pub from: String,
    pub where_clause: Option<SqlExpr>,
    pub group_by: Vec<String>,
    /// `(column, ascending)`.
    pub order_by: Vec<(String, bool)>,
    pub limit: Option<usize>,
}

pub fn parse(input: &str) -> Result<SqlQuery> {
    let toks = tokenize(input)?;
    let mut p = Parser { toks, pos: 0 };
    let q = p.query()?;
    if p.pos != p.toks.len() {
        return Err(err(format!("trailing tokens after query: {:?}", &p.toks[p.pos..])));
    }
    Ok(q)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn symbol(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Symbol(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn query(&mut self) -> Result<SqlQuery> {
        self.expect_keyword("SELECT")?;
        let select = if self.symbol('*') {
            Vec::new()
        } else {
            let mut items = vec![self.select_item()?];
            while self.symbol(',') {
                items.push(self.select_item()?);
            }
            items
        };
        self.expect_keyword("FROM")?;
        let from = self.ident()?;
        let where_clause = if self.keyword("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.ident()?);
            while self.symbol(',') {
                group_by.push(self.ident()?);
            }
        }
        let mut order_by = Vec::new();
        if self.keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let col = self.ident()?;
                let asc = if self.keyword("DESC") {
                    false
                } else {
                    self.keyword("ASC");
                    true
                };
                order_by.push((col, asc));
                if !self.symbol(',') {
                    break;
                }
            }
        }
        let limit = if self.keyword("LIMIT") {
            match self.next() {
                Some(Tok::Int(n)) if n >= 0 => Some(n as usize),
                other => return Err(err(format!("expected LIMIT count, found {other:?}"))),
            }
        } else {
            None
        };
        Ok(SqlQuery { select, from, where_clause, group_by, order_by, limit })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let expr = self.expr()?;
        let alias = if self.keyword("AS") {
            Some(self.ident()?)
        } else if let Some(Tok::Ident(s)) = self.peek() {
            // Bare alias — but not a clause keyword.
            let is_kw = ["FROM", "WHERE", "GROUP", "ORDER", "LIMIT", "AND", "OR"]
                .iter()
                .any(|k| s.eq_ignore_ascii_case(k));
            if is_kw {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn expr(&mut self) -> Result<SqlExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.and_expr()?;
        while self.keyword("OR") {
            let right = self.and_expr()?;
            left = SqlExpr::Bin(Box::new(left), SqlBinOp::Or, Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.not_expr()?;
        while self.keyword("AND") {
            let right = self.not_expr()?;
            left = SqlExpr::Bin(Box::new(left), SqlBinOp::And, Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr> {
        if self.keyword("NOT") {
            Ok(SqlExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<SqlExpr> {
        let left = self.add_expr()?;
        if self.keyword("IS") {
            let negated = self.keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(SqlExpr::IsNull { expr: Box::new(left), negated });
        }
        let op = match self.peek() {
            Some(Tok::Symbol('=')) => Some(SqlBinOp::Eq),
            Some(Tok::Symbol('<')) => Some(SqlBinOp::Lt),
            Some(Tok::Symbol('>')) => Some(SqlBinOp::Gt),
            Some(Tok::Op2(['<', '='])) => Some(SqlBinOp::Le),
            Some(Tok::Op2(['>', '='])) => Some(SqlBinOp::Ge),
            Some(Tok::Op2(['<', '>'])) | Some(Tok::Op2(['!', '='])) => Some(SqlBinOp::Ne),
            _ => None,
        };
        match op {
            None => Ok(left),
            Some(op) => {
                self.pos += 1;
                let right = self.add_expr()?;
                Ok(SqlExpr::Bin(Box::new(left), op, Box::new(right)))
            }
        }
    }

    fn add_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Symbol('+')) => SqlBinOp::Add,
                Some(Tok::Symbol('-')) => SqlBinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = SqlExpr::Bin(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Symbol('*')) => SqlBinOp::Mul,
                Some(Tok::Symbol('/')) => SqlBinOp::Div,
                Some(Tok::Symbol('%')) => SqlBinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = SqlExpr::Bin(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<SqlExpr> {
        if self.symbol('-') {
            let inner = self.unary_expr()?;
            return Ok(SqlExpr::Bin(Box::new(SqlExpr::Int(0)), SqlBinOp::Sub, Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr> {
        match self.next() {
            Some(Tok::Int(n)) => Ok(SqlExpr::Int(n)),
            Some(Tok::Float(f)) => Ok(SqlExpr::Float(f)),
            Some(Tok::Str(s)) => Ok(SqlExpr::Str(s)),
            Some(Tok::Symbol('(')) => {
                let e = self.expr()?;
                if !self.symbol(')') {
                    return Err(err("expected ')'"));
                }
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if name.eq_ignore_ascii_case("TRUE") {
                    return Ok(SqlExpr::Bool(true));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    return Ok(SqlExpr::Bool(false));
                }
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(SqlExpr::Null);
                }
                if self.symbol('(') {
                    // Aggregate call.
                    let func = name.to_uppercase();
                    if !matches!(func.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX") {
                        return Err(err(format!("unknown function {name}")));
                    }
                    let (arg, star) = if self.symbol('*') {
                        (None, true)
                    } else if self.peek() == Some(&Tok::Symbol(')')) {
                        return Err(err(format!("{func} needs an argument")));
                    } else {
                        (Some(self.ident()?), false)
                    };
                    if !self.symbol(')') {
                        return Err(err("expected ')' after aggregate argument"));
                    }
                    if star && func != "COUNT" {
                        return Err(err(format!("{func}(*) is not valid SQL")));
                    }
                    return Ok(SqlExpr::AggCall { func, arg, star });
                }
                Ok(SqlExpr::Col(name))
            }
            other => Err(err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_sort_query() {
        let q = parse(
            "SELECT * FROM dataset WHERE guess = target \
             ORDER BY target ASC, country DESC, date DESC LIMIT 10",
        )
        .unwrap();
        assert!(q.select.is_empty());
        assert_eq!(q.from, "dataset");
        assert!(q.where_clause.is_some());
        assert_eq!(
            q.order_by,
            vec![
                ("target".to_string(), true),
                ("country".to_string(), false),
                ("date".to_string(), false)
            ]
        );
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_grouping_query() {
        let q = parse("SELECT country, target, COUNT(*) AS cnt FROM t GROUP BY country, target")
            .unwrap();
        assert_eq!(q.group_by, vec!["country", "target"]);
        assert_eq!(q.select.len(), 3);
        assert_eq!(q.select[2].alias.as_deref(), Some("cnt"));
        assert!(matches!(
            &q.select[2].expr,
            SqlExpr::AggCall { func, star: true, .. } if func == "COUNT"
        ));
    }

    #[test]
    fn operator_precedence() {
        let q = parse("SELECT * FROM t WHERE a + b * 2 >= 10 AND NOT c = 'x' OR d IS NOT NULL")
            .unwrap();
        // OR binds loosest.
        let SqlExpr::Bin(_, SqlBinOp::Or, rhs) = q.where_clause.unwrap() else {
            panic!("expected OR at top")
        };
        assert!(matches!(*rhs, SqlExpr::IsNull { negated: true, .. }));
    }

    #[test]
    fn string_escaping() {
        let q = parse("SELECT * FROM t WHERE name = 'O''Brien'").unwrap();
        let SqlExpr::Bin(_, _, rhs) = q.where_clause.unwrap() else { panic!() };
        assert_eq!(*rhs, SqlExpr::Str("O'Brien".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra garbage !!!").is_err());
        assert!(parse("SELECT FOO(a) FROM t").is_err());
        assert!(parse("SELECT SUM(*) FROM t").is_err());
        assert!(parse("SELECT * FROM t WHERE a = 'unterminated").is_err());
    }

    #[test]
    fn negative_numbers_and_arithmetic() {
        let q = parse("SELECT a - -1 AS x FROM t").unwrap();
        assert_eq!(q.select[0].alias.as_deref(), Some("x"));
    }
}
