//! SQL over DataFrames: `read.json` schema inference plus a mini dialect
//! compiled onto the DataFrame API — the Spark-SQL stand-in.

mod infer;
mod parser;

pub use infer::{infer_schema, read_json, Inferred};
pub use parser::{parse, SelectItem, SqlBinOp, SqlExpr, SqlQuery};

use crate::dataframe::{Agg, CmpOp, DataFrame, DataType, Expr, NamedExpr, NumOp, SortDir, Value};
use crate::error::{Result, SparkliteError};
use std::collections::HashMap;

fn err(msg: impl Into<String>) -> SparkliteError {
    SparkliteError::Sql(msg.into())
}

/// A catalog of temp views, like a `SparkSession`'s.
#[derive(Default)]
pub struct SqlContext {
    tables: HashMap<String, DataFrame>,
}

impl SqlContext {
    pub fn new() -> SqlContext {
        SqlContext::default()
    }

    /// Registers a DataFrame under a view name
    /// (`createOrReplaceTempView`).
    pub fn register(&mut self, name: impl Into<String>, df: DataFrame) {
        self.tables.insert(name.into(), df);
    }

    /// Parses and executes a query against the registered views.
    pub fn sql(&self, query: &str) -> Result<DataFrame> {
        let q = parse(query)?;
        let df = self
            .tables
            .get(&q.from)
            .ok_or_else(|| err(format!("unknown table '{}'", q.from)))?
            .clone();
        compile_query(&q, df)
    }
}

/// Converts a scalar SQL expression (no aggregates) to a DataFrame
/// expression.
fn to_expr(e: &SqlExpr) -> Result<Expr> {
    Ok(match e {
        SqlExpr::Col(c) => Expr::col(c.clone()),
        SqlExpr::Int(n) => Expr::lit(Value::I64(*n)),
        SqlExpr::Float(f) => Expr::lit(Value::F64(*f)),
        SqlExpr::Str(s) => Expr::lit(Value::str(s)),
        SqlExpr::Bool(b) => Expr::lit(Value::Bool(*b)),
        SqlExpr::Null => Expr::lit(Value::Null),
        SqlExpr::Not(inner) => Expr::not(to_expr(inner)?),
        SqlExpr::IsNull { expr, negated } => {
            let base = Expr::is_null(to_expr(expr)?);
            if *negated {
                Expr::not(base)
            } else {
                base
            }
        }
        SqlExpr::Bin(a, op, b) => {
            let (a, b) = (to_expr(a)?, to_expr(b)?);
            match op {
                SqlBinOp::Eq => Expr::cmp(a, CmpOp::Eq, b),
                SqlBinOp::Ne => Expr::cmp(a, CmpOp::Ne, b),
                SqlBinOp::Lt => Expr::cmp(a, CmpOp::Lt, b),
                SqlBinOp::Le => Expr::cmp(a, CmpOp::Le, b),
                SqlBinOp::Gt => Expr::cmp(a, CmpOp::Gt, b),
                SqlBinOp::Ge => Expr::cmp(a, CmpOp::Ge, b),
                SqlBinOp::And => Expr::and(a, b),
                SqlBinOp::Or => Expr::or(a, b),
                SqlBinOp::Add => Expr::num(a, NumOp::Add, b),
                SqlBinOp::Sub => Expr::num(a, NumOp::Sub, b),
                SqlBinOp::Mul => Expr::num(a, NumOp::Mul, b),
                SqlBinOp::Div => Expr::num(a, NumOp::Div, b),
                SqlBinOp::Mod => Expr::num(a, NumOp::Mod, b),
            }
        }
        SqlExpr::AggCall { func, .. } => {
            return Err(err(format!("{func} is only allowed in the SELECT list")))
        }
    })
}

fn item_name(item: &SelectItem, i: usize) -> String {
    if let Some(a) = &item.alias {
        return a.clone();
    }
    match &item.expr {
        SqlExpr::Col(c) => c.clone(),
        SqlExpr::AggCall { func, arg, star } => {
            if *star {
                format!("{}(*)", func.to_lowercase())
            } else {
                format!("{}({})", func.to_lowercase(), arg.as_deref().unwrap_or(""))
            }
        }
        _ => format!("_c{i}"),
    }
}

fn compile_query(q: &SqlQuery, df: DataFrame) -> Result<DataFrame> {
    let mut df = df;
    if let Some(w) = &q.where_clause {
        df = df.filter(to_expr(w)?)?;
    }

    let has_agg = q.select.iter().any(|item| matches!(item.expr, SqlExpr::AggCall { .. }));

    if !q.group_by.is_empty() || has_agg {
        // Aggregation path. Every select item must be a grouping column or
        // an aggregate.
        let keys: Vec<&str> = q.group_by.iter().map(|s| s.as_str()).collect();
        let mut aggs: Vec<(Agg, String)> = Vec::new();
        let mut output: Vec<String> = Vec::new();
        if q.select.is_empty() {
            return Err(err("SELECT * cannot be combined with GROUP BY / aggregates"));
        }
        for (i, item) in q.select.iter().enumerate() {
            let name = item_name(item, i);
            match &item.expr {
                SqlExpr::Col(c) => {
                    if !q.group_by.contains(c) {
                        return Err(err(format!(
                            "column '{c}' must appear in GROUP BY or inside an aggregate"
                        )));
                    }
                    output.push(c.clone());
                }
                SqlExpr::AggCall { func, arg, star } => {
                    let agg = match (func.as_str(), arg, star) {
                        ("COUNT", _, true) => Agg::Count,
                        ("COUNT", Some(c), false) => Agg::CountCol(c.clone()),
                        ("SUM", Some(c), false) => Agg::Sum(c.clone()),
                        ("AVG", Some(c), false) => Agg::Avg(c.clone()),
                        ("MIN", Some(c), false) => Agg::Min(c.clone()),
                        ("MAX", Some(c), false) => Agg::Max(c.clone()),
                        _ => return Err(err(format!("unsupported aggregate {func}"))),
                    };
                    aggs.push((agg, name.clone()));
                    output.push(name);
                }
                other => {
                    return Err(err(format!("select item {other:?} is not valid with GROUP BY")))
                }
            }
        }
        df = df.group_by(&keys, aggs)?;
        // Reorder/project to the select-list order.
        let exprs: Vec<NamedExpr> = output
            .iter()
            .map(|name| {
                let dtype = df.schema().field(name).map(|f| f.dtype).unwrap_or(DataType::Any);
                NamedExpr::passthrough(name, dtype)
            })
            .collect();
        df = df.select(exprs)?;
    } else if !q.select.is_empty() {
        let exprs: Vec<NamedExpr> = q
            .select
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let name = item_name(item, i);
                let dtype = match &item.expr {
                    SqlExpr::Col(c) => {
                        df.schema().field(c).map(|f| f.dtype).unwrap_or(DataType::Any)
                    }
                    _ => DataType::Any,
                };
                Ok(NamedExpr { name, expr: to_expr(&item.expr)?, dtype })
            })
            .collect::<Result<_>>()?;
        df = df.select(exprs)?;
    }

    if !q.order_by.is_empty() {
        let keys = q
            .order_by
            .iter()
            .map(|(c, asc)| (c.clone(), if *asc { SortDir::asc() } else { SortDir::desc() }))
            .collect();
        df = df.order_by(keys)?;
    }
    if let Some(n) = q.limit {
        df = df.limit(n);
    }
    Ok(df)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SparkliteConf, SparkliteContext};

    fn setup() -> (SparkliteContext, SqlContext) {
        let ctx = SparkliteContext::new(SparkliteConf::default().with_executors(2));
        let text = "\
{\"guess\": \"French\", \"target\": \"French\", \"country\": \"AU\", \"date\": \"2013-08-19\"}\n\
{\"guess\": \"German\", \"target\": \"French\", \"country\": \"US\", \"date\": \"2013-08-20\"}\n\
{\"guess\": \"Danish\", \"target\": \"Danish\", \"country\": \"AU\", \"date\": \"2013-08-21\"}\n\
{\"guess\": \"French\", \"target\": \"Danish\", \"country\": \"DE\", \"date\": \"2013-08-22\"}\n\
{\"guess\": \"Danish\", \"target\": \"Danish\", \"country\": \"AU\", \"date\": \"2013-08-23\"}\n";
        ctx.hdfs().put_text("/conf.json", text).unwrap();
        let df = read_json(&ctx, "hdfs:///conf.json").unwrap();
        let mut sql = SqlContext::new();
        sql.register("dataset", df);
        (ctx, sql)
    }

    #[test]
    fn filter_query() {
        let (_ctx, sql) = setup();
        let out = sql.sql("SELECT * FROM dataset WHERE guess = target").unwrap();
        assert_eq!(out.count().unwrap(), 3);
    }

    #[test]
    fn grouping_query() {
        let (_ctx, sql) = setup();
        let out = sql
            .sql("SELECT country, COUNT(*) AS cnt FROM dataset GROUP BY country ORDER BY cnt DESC, country ASC")
            .unwrap();
        let rows = out.collect_rows().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0].as_str(), Some("AU"));
        assert_eq!(rows[0][1], Value::I64(3));
    }

    #[test]
    fn sort_query_like_figure_3() {
        let (_ctx, sql) = setup();
        let out = sql
            .sql(
                "SELECT * FROM dataset WHERE guess = target \
                 ORDER BY target ASC, country DESC, date DESC LIMIT 10",
            )
            .unwrap();
        let rows = out.collect_rows().unwrap();
        assert_eq!(rows.len(), 3);
        let target_idx = out.schema().index_of("target").unwrap();
        let date_idx = out.schema().index_of("date").unwrap();
        assert_eq!(rows[0][target_idx].as_str(), Some("Danish"));
        assert_eq!(rows[0][date_idx].as_str(), Some("2013-08-23"));
    }

    #[test]
    fn aggregate_without_group_by() {
        let (_ctx, sql) = setup();
        let rows = sql.sql("SELECT COUNT(*) AS n FROM dataset").unwrap().collect_rows().unwrap();
        assert_eq!(rows, vec![vec![Value::I64(5)]]);
    }

    #[test]
    fn projection_with_arithmetic() {
        let ctx = SparkliteContext::new(SparkliteConf::default().with_executors(2));
        ctx.hdfs().put_text("/n.json", "{\"x\": 2}\n{\"x\": 5}\n").unwrap();
        let mut sql = SqlContext::new();
        sql.register("t", read_json(&ctx, "hdfs:///n.json").unwrap());
        let rows =
            sql.sql("SELECT x * 10 + 1 AS y FROM t ORDER BY y").unwrap().collect_rows().unwrap();
        assert_eq!(rows, vec![vec![Value::I64(21)], vec![Value::I64(51)]]);
    }

    #[test]
    fn errors_are_reported() {
        let (_ctx, sql) = setup();
        assert!(sql.sql("SELECT * FROM nope").is_err());
        assert!(sql.sql("SELECT bogus FROM dataset").is_err());
        assert!(sql.sql("SELECT country, COUNT(*) FROM dataset GROUP BY target").is_err());
        assert!(sql.sql("SELECT guess FROM dataset GROUP BY country").is_err());
    }
}
