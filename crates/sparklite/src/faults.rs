//! Deterministic chaos injection: the runtime half of
//! [`FaultPlan`](crate::conf::FaultPlan).
//!
//! Every injection decision is a pure function of
//! `(seed, fault kind, stage/file, partition, attempt)`, hashed through a
//! SplitMix64 finalizer — no RNG state, no ordering sensitivity. Two runs of
//! the same query under the same plan see byte-identical fault schedules,
//! which is what makes chaos property tests (results under 20% injected
//! failures must equal fault-free results) possible at all.
//!
//! Convergence: each fault kind fires at most
//! [`max_injected_per_task`](crate::conf::FaultPlan::max_injected_per_task)
//! times per task key. Because a task attempt can lose to at most two
//! failing kinds (an injected kill and an injected storage fault), the
//! default cap of 1 guarantees at most two injected failures per task —
//! comfortably inside the default attempt budget of 4, so chaos never turns
//! a healthy job into a spurious failure.

use crate::conf::FaultPlan;
use crate::events::{Event, EventBus};
use crate::executor::TaskContext;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Panic payload for an injected fault; the executor classifies it as
/// [`FailureKind::Injected`](crate::error::FailureKind::Injected) (retried).
pub struct InjectedFault(pub String);

/// Panic payload for a deterministic application error raised via
/// [`task_bail`](crate::rdd::task_bail); classified as
/// [`FailureKind::App`](crate::error::FailureKind::App) (fails fast).
pub struct AppAbort(pub String);

/// Fault kinds, used as hash salts so the kinds draw independent decisions.
#[derive(Debug, Clone, Copy)]
enum Kind {
    TaskKill,
    ExecDeath,
    StorageFault,
    Straggler,
    CacheFault,
}

impl Kind {
    fn salt(self) -> u64 {
        match self {
            Kind::TaskKill => 0x7461736B_6B696C6C,     // "taskkill"
            Kind::ExecDeath => 0x65786563_64656164,    // "execdead"
            Kind::StorageFault => 0x73746F72_6661696C, // "storfail"
            Kind::Straggler => 0x73747261_67676C65,    // "straggle"
            Kind::CacheFault => 0x63616368_6C6F7374,   // "cachlost"
        }
    }

    /// The event-log tag for [`Event::ChaosInject`].
    fn name(self) -> &'static str {
        match self {
            Kind::TaskKill => "task_kill",
            Kind::ExecDeath => "exec_death",
            Kind::StorageFault => "storage_fault",
            Kind::Straggler => "straggler",
            Kind::CacheFault => "cache_fault",
        }
    }
}

/// SplitMix64 finalizer: a strong 64-bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The seeded injector shared by the driver, the executor pool, and the
/// shuffle layer. Holds no per-fault state: every decision is recomputed
/// from the plan's seed, so injection is insensitive to scheduling order.
pub struct FaultInjector {
    plan: FaultPlan,
    events: Arc<EventBus>,
    /// Shuffle ids are handed out in driver-side `prepare` order, which is
    /// deterministic for a fixed query plan.
    shuffle_ids: AtomicU64,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan, events: Arc<EventBus>) -> Self {
        FaultInjector { plan, events, shuffle_ids: AtomicU64::new(0) }
    }

    /// Records one injected fault on the event stream (which derives the
    /// `injected_faults` counter).
    fn inject(&self, kind: Kind, a: u64, b: u64, attempt: u32) {
        self.events.emit(Event::ChaosInject { kind: kind.name(), a, b, attempt });
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether retries/speculation can re-execute tasks, meaning stage
    /// inputs must stay re-executable (see `SortedRdd`'s bucket handling).
    pub fn armed(&self) -> bool {
        self.plan.armed()
    }

    pub(crate) fn next_shuffle_id(&self) -> u64 {
        self.shuffle_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// One hash-based coin flip for `(kind, a, b, attempt)`.
    fn decision(&self, prob: f64, kind: Kind, a: u64, b: u64, attempt: u32) -> bool {
        let z = self
            .plan
            .seed
            .wrapping_add(kind.salt())
            .wrapping_add(a.wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add(b.wrapping_mul(0xD1B54A32D192ED03))
            .wrapping_add(u64::from(attempt).wrapping_mul(0x2545F4914F6CDD1D));
        ((mix64(z) >> 11) as f64 / (1u64 << 53) as f64) < prob
    }

    /// The coin flip plus the per-task cap: a kind stops firing for a task
    /// once it already fired `max_injected_per_task` times at earlier
    /// attempts. Stateless — the history is recomputed from the hash.
    fn fires(&self, prob: f64, kind: Kind, a: u64, b: u64, attempt: u32) -> bool {
        if prob <= 0.0 || !self.decision(prob, kind, a, b, attempt) {
            return false;
        }
        let prior = (0..attempt).filter(|&j| self.decision(prob, kind, a, b, j)).count();
        prior < self.plan.max_injected_per_task as usize
    }

    /// Called at the start of every task attempt, inside the panic guard.
    /// May slow the attempt down (straggler) or kill it (executor death
    /// mid-task), in that order, so a straggling attempt can still be killed.
    pub(crate) fn on_task_start(&self, tc: &TaskContext) {
        let (stage, part, attempt) = (tc.stage, tc.partition as u64, tc.attempt);
        if self.fires(self.plan.straggler_prob, Kind::Straggler, stage, part, attempt) {
            self.inject(Kind::Straggler, stage, part, attempt);
            std::thread::sleep(std::time::Duration::from_micros(self.plan.straggler_delay_us));
        }
        if self.fires(self.plan.task_failure_prob, Kind::TaskKill, stage, part, attempt) {
            self.inject(Kind::TaskKill, stage, part, attempt);
            std::panic::panic_any(InjectedFault(format!(
                "injected task failure (stage {stage}, partition {part}, attempt {attempt})"
            )));
        }
    }

    /// Called before a storage block read inside a task. Decisions are keyed
    /// by `(file, block, attempt)` so a retried attempt re-draws its coin.
    pub(crate) fn on_storage_read(&self, path: &str, block: usize, tc: &TaskContext) {
        let key =
            mix64(path.bytes().fold(0xcbf29ce484222325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
            }));
        if self.fires(
            self.plan.storage_fault_prob,
            Kind::StorageFault,
            key,
            block as u64,
            tc.attempt,
        ) {
            self.inject(Kind::StorageFault, key, block as u64, tc.attempt);
            std::panic::panic_any(InjectedFault(format!(
                "injected storage fault reading block {block} of {path} (attempt {})",
                tc.attempt
            )));
        }
    }

    /// Called before a persisted-partition cache read, keyed like storage
    /// reads (same probability knob) on `(rdd id, partition, attempt)`.
    /// Returns `true` when the cached block must be treated as lost.
    ///
    /// Unlike [`FaultInjector::on_storage_read`] this does not panic: the
    /// cache layer's recovery *is* lineage recomputation, which needs no
    /// task retry — the caller drops the slot and recomputes in place, so
    /// injected cache faults cost recompute time but no attempt budget.
    pub(crate) fn on_cached_read(&self, rdd_id: u64, split: usize, tc: &TaskContext) -> bool {
        if self.fires(
            self.plan.storage_fault_prob,
            Kind::CacheFault,
            rdd_id,
            split as u64,
            tc.attempt,
        ) {
            self.inject(Kind::CacheFault, rdd_id, split as u64, tc.attempt);
            return true;
        }
        false
    }

    /// Which of a shuffle's `n` freshly registered map outputs are lost to
    /// simulated executor death. Only the *initial* registration (attempt 0)
    /// can lose outputs; recomputed outputs survive, so lineage recovery
    /// converges in one round.
    pub(crate) fn lost_map_outputs(&self, shuffle_id: u64, n: usize) -> Vec<usize> {
        if self.plan.exec_death_prob <= 0.0 {
            return Vec::new();
        }
        let lost: Vec<usize> = (0..n)
            .filter(|&p| {
                self.fires(self.plan.exec_death_prob, Kind::ExecDeath, shuffle_id, p as u64, 0)
            })
            .collect();
        for &p in &lost {
            self.inject(Kind::ExecDeath, shuffle_id, p as u64, 0);
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(plan: FaultPlan) -> FaultInjector {
        let metrics = Arc::new(crate::executor::Metrics::default());
        FaultInjector::new(plan, Arc::new(EventBus::new(metrics)))
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = injector(FaultPlan::chaos(7, 0.5));
        let b = injector(FaultPlan::chaos(7, 0.5));
        let c = injector(FaultPlan::chaos(8, 0.5));
        let mut diff = 0;
        for p in 0..64u64 {
            let (x, y, z) = (
                a.decision(0.5, Kind::TaskKill, 0, p, 0),
                b.decision(0.5, Kind::TaskKill, 0, p, 0),
                c.decision(0.5, Kind::TaskKill, 0, p, 0),
            );
            assert_eq!(x, y, "same seed must agree");
            if x != z {
                diff += 1;
            }
        }
        assert!(diff > 10, "different seeds should disagree often, got {diff}");
    }

    #[test]
    fn rate_is_roughly_the_probability() {
        let inj = injector(FaultPlan::chaos(3, 0.2));
        let hits =
            (0..10_000u64).filter(|&p| inj.decision(0.2, Kind::StorageFault, 1, p, 0)).count();
        assert!((1_500..2_500).contains(&hits), "got {hits} hits at p=0.2");
    }

    #[test]
    fn per_task_cap_limits_injections_across_attempts() {
        // With probability 1.0 every attempt *wants* to fire, but the cap
        // allows only the first `max_injected_per_task` of them.
        let inj =
            injector(FaultPlan::default().with_task_failures(1.0).with_max_injected_per_task(2));
        let fired: Vec<bool> =
            (0..6).map(|att| inj.fires(1.0, Kind::TaskKill, 0, 0, att)).collect();
        assert_eq!(fired, vec![true, true, false, false, false, false]);
    }

    #[test]
    fn lost_outputs_only_on_first_registration() {
        let inj = injector(FaultPlan::default().with_exec_death(1.0));
        let lost = inj.lost_map_outputs(0, 4);
        assert_eq!(lost, vec![0, 1, 2, 3]);
        // Recomputed outputs are registered at attempt 1 conceptually; the
        // cap (1) means the same shuffle cannot lose them again.
        assert!(!inj.fires(1.0, Kind::ExecDeath, 0, 0, 1));
    }
}
