//! The driver-side cluster control plane.
//!
//! A [`Cluster`] spawns N executor workers (threads or real OS processes,
//! per [`DistMode`]), runs the registration handshake, supervises each
//! worker through a dedicated reader thread plus a heartbeat-deadline
//! monitor, dispatches serialized tasks, places and fetches shuffle blocks,
//! and merges each worker's forwarded event stream onto the shared
//! [`EventBus`] — `ExecutorRegistered`, `ExecutorHeartbeat`, `BlockPush`,
//! `BlockFetch` are *executor-side observations*, emitted by the worker
//! that did the work, sequence-numbered, batched onto the control
//! connection, and replayed here through a per-worker
//! [`ExecutorStreamMerge`] — so distributed runs reconcile in the same
//! timeline machinery as local ones, and the dist counters are derived
//! from what the executors saw, not from what the driver asked for. Only
//! `ExecutorLost` and `ExecutorEventsLost` stay driver-emitted: a dead
//! worker cannot report its own death or its un-forwarded tail.
//!
//! Death detection is three-way, and any of the three paths funnels into
//! [`Cluster::declare_dead`] exactly once per worker:
//! 1. the supervisor reader sees EOF or an I/O error on the control
//!    connection (a killed process, or a thread worker honouring `Die`);
//! 2. the monitor sees a heartbeat deadline lapse;
//! 3. a reducer's block fetch fails at the socket level.

use super::proto::{self, Msg, TaskDesc};
use super::worker::{run_worker, NoRuntime};
use crate::conf::{DistConf, DistMode};
use crate::events::{Event, EventBus, ExecutorStreamMerge};
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long the driver waits for all workers to register at startup.
const REGISTER_DEADLINE: Duration = Duration::from_secs(10);
/// How long a task dispatch waits for `TaskDone`/`TaskFailed`.
const DISPATCH_TIMEOUT: Duration = Duration::from_secs(30);

/// Why a block fetch could not return bytes.
#[derive(Debug)]
pub enum FetchError {
    /// The block's holder is dead or no longer has it; recoverable by
    /// recomputing the map output from lineage and re-pushing.
    Lost,
    /// A non-recoverable error (protocol corruption, driver bug).
    Other(String),
}

type TaskReply = Result<(u64, u64), String>;

/// What the driver knows about one worker's forwarded event stream: the
/// last sequence number it has seen, the loss it can account for, whether
/// the stream ended completely (goodbye received or merge finalized), and
/// the handshake-measured clock offset. Chaos figures report these so a
/// killed executor's events are accounted for, not silently dropped.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForwardStats {
    /// Highest event sequence number received from the worker.
    pub last_seq: u64,
    /// Events known lost: worker-reported ring drops plus sequence gaps.
    pub lost: u64,
    /// True once the stream was finalized (clean goodbye or declared dead).
    pub drained: bool,
    /// Driver-clock minus worker-clock, µs, measured at registration.
    pub offset_us: i64,
}

struct WorkerState {
    index: usize,
    pid: AtomicU64,
    alive: AtomicBool,
    /// Write half of the control connection (reads happen on the
    /// supervisor thread's own clone).
    control: Mutex<Option<TcpStream>>,
    block_addr: Mutex<String>,
    /// Pooled connection to the worker's block service.
    block_conn: Mutex<Option<TcpStream>>,
    /// Duplicate handles (`try_clone`) of `control` and `block_conn`, under
    /// their own locks so [`Cluster::declare_dead`] can sever a hung
    /// worker's sockets without touching the I/O mutexes — those may be
    /// held across a blocking send/recv to the very worker being declared
    /// dead (a SIGSTOPped process heartbeats nothing but keeps its sockets
    /// open, so the reducer parked in `recv` holds `block_conn` forever).
    control_sever: Mutex<Option<TcpStream>>,
    block_sever: Mutex<Option<TcpStream>>,
    /// Last heartbeat arrival, µs since the cluster epoch.
    last_beat_us: AtomicU64,
    /// Reassembly state for the worker's forwarded event stream.
    merge: Mutex<ExecutorStreamMerge>,
    /// True once the stream has been finalized — by a clean `Goodbye` or by
    /// [`Cluster::finalize_stream`] on death/shutdown. Guards against a
    /// double finalization double-counting loss.
    drained: AtomicBool,
    child: Mutex<Option<Child>>,
    worker_thread: Mutex<Option<JoinHandle<()>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl WorkerState {
    fn new(index: usize) -> WorkerState {
        WorkerState {
            index,
            pid: AtomicU64::new(0),
            alive: AtomicBool::new(false),
            control: Mutex::new(None),
            block_addr: Mutex::new(String::new()),
            block_conn: Mutex::new(None),
            control_sever: Mutex::new(None),
            block_sever: Mutex::new(None),
            last_beat_us: AtomicU64::new(0),
            merge: Mutex::new(ExecutorStreamMerge::new(0)),
            drained: AtomicBool::new(false),
            child: Mutex::new(None),
            worker_thread: Mutex::new(None),
            supervisor: Mutex::new(None),
        }
    }

    fn send(&self, msg: &Msg) -> std::io::Result<()> {
        let mut control = self.control.lock().expect("control lock");
        match control.as_mut() {
            Some(stream) => proto::send_msg(stream, msg),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "worker control connection closed",
            )),
        }
    }

    /// Shuts down both of the worker's sockets via the duplicate handles.
    /// Deliberately never takes `control` or `block_conn`: a thread blocked
    /// in I/O on either keeps holding its mutex until this very shutdown
    /// unblocks it, so taking them here would deadlock the caller.
    fn sever(&self) {
        let control = self.control_sever.lock().expect("control sever lock").take();
        if let Some(stream) = control {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let block = self.block_sever.lock().expect("block sever lock").take();
        if let Some(stream) = block {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// The driver's handle to its executor workers.
pub struct Cluster {
    events: Arc<EventBus>,
    epoch: Instant,
    heartbeat_ms: u64,
    heartbeat_timeout_ms: u64,
    /// Capacity handed to each worker's bounded event forward buffer.
    event_capacity: u64,
    next_task: AtomicU64,
    workers: Vec<Arc<WorkerState>>,
    /// Which worker holds each map output: `(shuffle, map_part) → worker`.
    locations: Mutex<HashMap<(u64, u64), usize>>,
    /// In-flight task dispatches awaiting completion, by task id.
    pending: Mutex<HashMap<u64, (usize, mpsc::Sender<TaskReply>)>>,
    shutting_down: AtomicBool,
    monitor: Mutex<Option<JoinHandle<()>>>,
}

impl Cluster {
    /// Spawns and registers every worker, then starts supervision. Fails if
    /// any worker does not complete the handshake within the deadline.
    pub fn start(dist: &DistConf, events: Arc<EventBus>) -> Result<Arc<Cluster>, String> {
        let n = dist.workers.max(1);
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind control: {e}"))?;
        let addr = listener.local_addr().map_err(|e| format!("control addr: {e}"))?.to_string();
        listener.set_nonblocking(true).map_err(|e| format!("control nonblocking: {e}"))?;

        // Share the bus's epoch so merged executor timestamps and
        // driver-collected stamps are on the same µs axis.
        let epoch = events.epoch();
        let cluster = Arc::new(Cluster {
            events,
            epoch,
            heartbeat_ms: dist.heartbeat_ms.max(1),
            heartbeat_timeout_ms: dist.heartbeat_timeout_ms.max(1),
            event_capacity: dist.event_capacity.max(1) as u64,
            next_task: AtomicU64::new(0),
            workers: (0..n).map(|i| Arc::new(WorkerState::new(i))).collect(),
            locations: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            shutting_down: AtomicBool::new(false),
            monitor: Mutex::new(None),
        });

        for (i, w) in cluster.workers.iter().enumerate() {
            match &dist.mode {
                DistMode::Off => return Err("cluster start with DistMode::Off".to_string()),
                DistMode::Threads => {
                    let addr = addr.clone();
                    let handle = thread::spawn(move || {
                        // A worker error after `Die`/driver loss is expected;
                        // startup errors surface via the registration deadline.
                        let _ = run_worker(&addr, i as u64, Arc::new(NoRuntime));
                    });
                    *w.worker_thread.lock().expect("worker thread lock") = Some(handle);
                }
                DistMode::Processes { cmd } => {
                    let mut command = if cmd.is_empty() {
                        let exe = std::env::current_exe()
                            .map_err(|e| format!("current_exe for worker spawn: {e}"))?;
                        let mut c = Command::new(exe);
                        c.arg("--executor");
                        c
                    } else {
                        let mut c = Command::new(&cmd[0]);
                        c.args(&cmd[1..]);
                        c
                    };
                    let child = command
                        .arg("--connect")
                        .arg(&addr)
                        .arg("--worker-id")
                        .arg(i.to_string())
                        .stdin(Stdio::null())
                        .stdout(Stdio::null())
                        .spawn()
                        .map_err(|e| {
                            cluster.abort_spawned();
                            format!("spawn worker {i}: {e}")
                        })?;
                    *w.child.lock().expect("child lock") = Some(child);
                }
            }
        }

        if let Err(e) = cluster.accept_registrations(&listener, n) {
            cluster.abort_spawned();
            return Err(e);
        }

        let monitor = {
            let cluster = Arc::clone(&cluster);
            thread::spawn(move || cluster.monitor_heartbeats())
        };
        *cluster.monitor.lock().expect("monitor lock") = Some(monitor);
        Ok(cluster)
    }

    /// Accepts control connections until every worker has registered.
    fn accept_registrations(
        self: &Arc<Self>,
        listener: &TcpListener,
        n: usize,
    ) -> Result<(), String> {
        let deadline = Instant::now() + REGISTER_DEADLINE;
        let mut registered = 0usize;
        while registered < n {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(format!("only {registered}/{n} workers registered in time"));
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                    continue;
                }
                Err(e) => return Err(format!("accept worker: {e}")),
            };
            // Anything can connect to the loopback control port, so a
            // handshake that goes wrong — garbage instead of `Register`, an
            // immediate hangup, a peer that sends nothing until the
            // (remaining) deadline — drops that one connection and keeps
            // accepting, rather than aborting startup for every worker.
            if stream.set_nonblocking(false).is_err() {
                continue;
            }
            proto::tune_stream(&stream);
            if stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1)))).is_err() {
                continue;
            }
            let Ok(mut read_half) = stream.try_clone() else { continue };
            let (worker, pid, block_addr, clock_us) = match proto::recv_msg(&mut read_half) {
                Ok(Some(Msg::Register { worker, pid, block_addr, clock_us })) => {
                    (worker, pid, block_addr, clock_us)
                }
                _ => continue,
            };
            let Some(state) = self.workers.get(worker as usize) else { continue };
            if state.alive.load(Ordering::SeqCst) {
                continue; // this worker index already registered
            }
            *state.block_addr.lock().expect("block addr lock") = block_addr;
            state.pid.store(pid, Ordering::Relaxed);
            state.last_beat_us.store(self.now_us(), Ordering::Relaxed);
            // Clock-offset handshake: the worker stamped `clock_us` against
            // its own epoch just before sending `Register`, so driver-now
            // minus worker-then over-estimates the offset by the one-way
            // trip (loopback: microseconds). Recorded for timestamp
            // translation, never trusted for ordering — sequence numbers
            // order the stream.
            let offset_us = self.now_us() as i64 - clock_us as i64;
            {
                let mut control = state.control.lock().expect("control lock");
                let mut stream = stream;
                if proto::send_msg(
                    &mut stream,
                    &Msg::RegisterAck {
                        heartbeat_ms: self.heartbeat_ms,
                        event_capacity: self.event_capacity,
                    },
                )
                .is_err()
                {
                    continue; // worker gone before the ack; the deadline reports it
                }
                *state.control_sever.lock().expect("control sever lock") = stream.try_clone().ok();
                *control = Some(stream);
            }
            // The worker flushes its `ExecutorRegistered` event eagerly
            // right after the ack; fold that first batch in *before*
            // reporting the worker registered, so `executors_registered`
            // is already correct when `start` returns — even if the worker
            // dies immediately after (the read timeout from above is still
            // armed, so a wedged worker cannot hang startup).
            match proto::recv_msg(&mut read_half) {
                Ok(Some(Msg::Events { first_seq, dropped, events, .. })) => {
                    let released = {
                        let mut merge = state.merge.lock().expect("merge lock");
                        *merge = ExecutorStreamMerge::new(offset_us);
                        merge.push_batch(first_seq, dropped, events)
                    };
                    for (at, ev) in released {
                        self.events.emit_remote(at, &ev);
                    }
                }
                _ => continue, // worker gone before its first flush
            }
            if read_half.set_read_timeout(None).is_err() {
                continue;
            }
            state.alive.store(true, Ordering::SeqCst);
            let supervisor = {
                let cluster = Arc::clone(self);
                let state = Arc::clone(state);
                thread::spawn(move || cluster.supervise(&state, read_half))
            };
            *state.supervisor.lock().expect("supervisor lock") = Some(supervisor);
            registered += 1;
        }
        Ok(())
    }

    /// Per-worker reader: heartbeats, task completions, and — on EOF or
    /// error — death detection.
    fn supervise(&self, state: &WorkerState, mut read_half: TcpStream) {
        loop {
            match proto::recv_msg(&mut read_half) {
                Ok(Some(Msg::Heartbeat { .. })) => {
                    // The beat event itself arrives in the `Events` batch
                    // the worker flushes just before this message; here the
                    // beat only feeds the liveness deadline.
                    state.last_beat_us.store(self.now_us(), Ordering::Relaxed);
                }
                Ok(Some(Msg::Events { first_seq, dropped, events, .. })) => {
                    // Forwarded traffic is proof of life too — a worker
                    // busy serving blocks may batch faster than it beats.
                    state.last_beat_us.store(self.now_us(), Ordering::Relaxed);
                    let released = state
                        .merge
                        .lock()
                        .expect("merge lock")
                        .push_batch(first_seq, dropped, events);
                    for (at, ev) in released {
                        self.events.emit_remote(at, &ev);
                    }
                }
                Ok(Some(Msg::Goodbye { .. })) => {
                    // Clean end of stream: everything the worker buffered
                    // has been flushed; only ring drops (if any) are loss.
                    self.finalize_stream(state, true);
                }
                Ok(Some(Msg::TaskDone { task, blocks, bytes })) => {
                    self.reply_pending(task, Ok((blocks, bytes)));
                }
                Ok(Some(Msg::TaskFailed { task, error })) => {
                    self.reply_pending(task, Err(error));
                }
                Ok(Some(_)) | Ok(None) | Err(_) => break,
            }
        }
        if !self.shutting_down.load(Ordering::SeqCst) {
            self.declare_dead(state.index, "control connection closed");
        }
    }

    /// Finalizes a worker's forwarded event stream exactly once: releases
    /// anything still pending in the merge and accounts for loss. A stream
    /// that ended without a goodbye (`complete == false`) gets an
    /// [`Event::ExecutorEventsLost`] even when the quantifiable loss is
    /// zero — the un-forwarded tail of a killed worker is unknowable, and
    /// the event marks the stream as cut rather than silently short.
    fn finalize_stream(&self, state: &WorkerState, complete: bool) {
        if state.drained.swap(true, Ordering::SeqCst) {
            return;
        }
        let (released, last_seq, lost) = {
            let mut merge = state.merge.lock().expect("merge lock");
            let released = merge.flush();
            (released, merge.last_seq(), merge.lost())
        };
        for (at, ev) in released {
            self.events.emit_remote(at, &ev);
        }
        if lost > 0 || !complete {
            self.events.emit(Event::ExecutorEventsLost {
                worker: state.index as u64,
                last_seq,
                lost,
            });
        }
    }

    /// Forwarding stats for one worker's event stream (chaos accounting).
    pub fn forward_stats(&self, worker: usize) -> Option<ForwardStats> {
        let state = self.workers.get(worker)?;
        let merge = state.merge.lock().expect("merge lock");
        Some(ForwardStats {
            last_seq: merge.last_seq(),
            lost: merge.lost(),
            drained: state.drained.load(Ordering::SeqCst),
            offset_us: merge.offset_us(),
        })
    }

    /// Deadline-based death detection: a worker whose last heartbeat is
    /// older than the timeout is declared lost.
    fn monitor_heartbeats(&self) {
        let tick = Duration::from_millis((self.heartbeat_timeout_ms / 4).clamp(5, 250));
        while !self.shutting_down.load(Ordering::SeqCst) {
            thread::sleep(tick);
            let now = self.now_us();
            for w in &self.workers {
                if w.alive.load(Ordering::SeqCst) {
                    let age_ms = now.saturating_sub(w.last_beat_us.load(Ordering::Relaxed)) / 1000;
                    if age_ms > self.heartbeat_timeout_ms {
                        self.declare_dead(w.index, "heartbeat timeout");
                    }
                }
            }
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn reply_pending(&self, task: u64, reply: TaskReply) {
        let entry = self.pending.lock().expect("pending lock").remove(&task);
        if let Some((_, tx)) = entry {
            let _ = tx.send(reply);
        }
    }

    /// Marks a worker dead (idempotently), severs its connections, fails
    /// its in-flight tasks, and emits `ExecutorLost`.
    fn declare_dead(&self, worker: usize, reason: &str) {
        let state = &self.workers[worker];
        if !state.alive.swap(false, Ordering::SeqCst) {
            return;
        }
        self.events.emit(Event::ExecutorLost { worker: worker as u64, reason: reason.to_string() });
        // The stream died with the worker: release what arrived, mark the
        // rest lost.
        self.finalize_stream(state, false);
        // Sever through the duplicate handles only: the `control` and
        // `block_conn` mutexes may be held by a thread blocked in I/O on
        // this very worker (a silent hang), and taking them here would
        // wedge the single monitor thread — stopping death detection for
        // every other worker too. The shutdown unblocks that thread, which
        // then observes the error and clears its side of the pool itself.
        state.sever();
        if let Some(child) = state.child.lock().expect("child lock").as_mut() {
            let _ = child.kill();
        }
        let mut pending = self.pending.lock().expect("pending lock");
        let orphaned: Vec<u64> =
            pending.iter().filter(|(_, (w, _))| *w == worker).map(|(id, _)| *id).collect();
        for id in orphaned {
            if let Some((_, tx)) = pending.remove(&id) {
                let _ = tx.send(Err(format!("executor {worker} lost: {reason}")));
            }
        }
    }

    /// Worker indices currently alive, ascending.
    pub fn live_workers(&self) -> Vec<usize> {
        self.workers.iter().filter(|w| w.alive.load(Ordering::SeqCst)).map(|w| w.index).collect()
    }

    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// False once shutdown has begun: new shuffles stay driver-local.
    pub fn is_active(&self) -> bool {
        !self.shutting_down.load(Ordering::SeqCst)
    }

    /// Sends one serialized task to a worker and waits for its completion.
    /// Returns the worker-reported `(blocks stored, bytes stored)`. A task
    /// that stored blocks makes the worker the holder of the task's
    /// `(shuffle, map_part)` label, so [`fetch`](Self::fetch) can find them.
    pub fn dispatch(
        &self,
        worker: usize,
        kind: &str,
        shuffle: u64,
        map_part: u64,
        payload: Vec<u8>,
    ) -> Result<(u64, u64), String> {
        let state = self.workers.get(worker).ok_or_else(|| format!("no such worker {worker}"))?;
        if !state.alive.load(Ordering::SeqCst) {
            return Err(format!("executor {worker} is dead"));
        }
        let id = self.next_task.fetch_add(1, Ordering::Relaxed);
        let task = TaskDesc { id, shuffle, map_part, kind: kind.to_string(), payload };
        let (tx, rx) = mpsc::channel();
        self.pending.lock().expect("pending lock").insert(id, (worker, tx));
        if let Err(e) = state.send(&Msg::LaunchTask { task }) {
            self.pending.lock().expect("pending lock").remove(&id);
            // `InvalidInput` is `write_frame` refusing an oversized frame —
            // a driver-local encoding failure, not evidence the worker died.
            if e.kind() != std::io::ErrorKind::InvalidInput {
                self.declare_dead(worker, "control write failed");
            }
            return Err(format!("dispatch to executor {worker}: {e}"));
        }
        let reply = match rx.recv_timeout(DISPATCH_TIMEOUT) {
            Ok(reply) => reply,
            Err(_) => {
                self.pending.lock().expect("pending lock").remove(&id);
                Err(format!("task {id} on executor {worker} timed out"))
            }
        };
        if let Ok((blocks, _)) = &reply {
            if *blocks > 0 {
                self.locations.lock().expect("locations lock").insert((shuffle, map_part), worker);
            }
        }
        reply
    }

    /// Stores one map task's per-reducer blocks on a live worker, preferring
    /// the part's existing holder, falling back deterministically to
    /// `live[map_part % live]`, and retrying on other live workers if the
    /// target dies mid-push. Records the placement and emits `BlockPush`.
    pub fn push_map_output(
        &self,
        shuffle: u64,
        map_part: u64,
        blocks: &[(u64, Vec<u8>)],
    ) -> Result<(), String> {
        let payload = proto::encode_store_payload(blocks);
        // A payload the frame layer cannot carry fails here, with the size
        // in the error, before any dispatch: the `LaunchTask` envelope adds
        // a tag, three varints, and the kind string (< 64 bytes), and
        // `write_frame` would reject the whole frame locally — an error
        // that must not read as a worker death and cascade through the
        // cluster killing healthy executors one retry at a time.
        if payload.len() + 64 > proto::MAX_FRAME {
            return Err(format!(
                "map output for shuffle {shuffle} part {map_part} encodes to {} bytes, \
                 over the {} byte frame limit; repartition the map side into smaller parts",
                payload.len(),
                proto::MAX_FRAME,
            ));
        }
        for _ in 0..self.workers.len() * 2 {
            let live = self.live_workers();
            if live.is_empty() {
                return Err("no live executors to hold shuffle output".to_string());
            }
            let preferred = self
                .locations
                .lock()
                .expect("locations lock")
                .get(&(shuffle, map_part))
                .copied()
                .filter(|&w| self.workers[w].alive.load(Ordering::SeqCst));
            let target = preferred.unwrap_or(live[map_part as usize % live.len()]);
            match self.dispatch(target, "store-blocks", shuffle, map_part, payload.clone()) {
                Ok(_) => {
                    // The `BlockPush` event is executor-emitted: the worker
                    // forwards it just before its `TaskDone`, so it is
                    // already merged by the time this dispatch returned.
                    self.locations
                        .lock()
                        .expect("locations lock")
                        .insert((shuffle, map_part), target);
                    return Ok(());
                }
                Err(e) => {
                    if self.workers[target].alive.load(Ordering::SeqCst) {
                        // The worker is fine; the task itself failed —
                        // that's a driver bug, not a recoverable death.
                        return Err(e);
                    }
                    // Dead target: loop and re-place on a survivor.
                }
            }
        }
        Err("could not place shuffle output on any live executor".to_string())
    }

    /// Fetches one map-output block from its holder. `Lost` means the holder
    /// is dead or no longer has the block; callers recover via lineage.
    pub fn fetch(
        &self,
        shuffle: u64,
        map_part: u64,
        reduce_part: u64,
    ) -> Result<Vec<u8>, FetchError> {
        let worker = match self.locations.lock().expect("locations lock").get(&(shuffle, map_part))
        {
            Some(&w) => w,
            None => return Err(FetchError::Lost),
        };
        let state = &self.workers[worker];
        if !state.alive.load(Ordering::SeqCst) {
            return Err(FetchError::Lost);
        }
        let reply = {
            let mut conn = state.block_conn.lock().expect("block conn lock");
            if conn.is_none() {
                let addr = state.block_addr.lock().expect("block addr lock").clone();
                match TcpStream::connect(&addr) {
                    Ok(c) => {
                        proto::tune_stream(&c);
                        // Stash the duplicate handle *before* re-checking
                        // liveness: if the worker was declared dead in the
                        // window since the check above, its sever pass may
                        // already have run and found nothing — in which
                        // case nobody would ever unblock a read on `c`, so
                        // bail out here instead of pooling it.
                        *state.block_sever.lock().expect("block sever lock") = c.try_clone().ok();
                        if !state.alive.load(Ordering::SeqCst) {
                            state.sever();
                            return Err(FetchError::Lost);
                        }
                        *conn = Some(c);
                    }
                    Err(_) => {
                        drop(conn);
                        self.declare_dead(worker, "block service unreachable");
                        return Err(FetchError::Lost);
                    }
                }
            }
            let stream = conn.as_mut().expect("pooled connection");
            let io = proto::send_msg(stream, &Msg::FetchBlock { shuffle, map_part, reduce_part })
                .and_then(|()| proto::recv_msg(stream));
            match io {
                Ok(Some(msg)) => msg,
                Ok(None) | Err(_) => {
                    *conn = None;
                    drop(conn);
                    self.declare_dead(worker, "block fetch failed");
                    return Err(FetchError::Lost);
                }
            }
        };
        match reply {
            // The `BlockFetch` event is executor-emitted: the serving
            // worker forwards it on its control connection after answering.
            Msg::BlockData { bytes } => Ok(bytes),
            Msg::BlockMissing { .. } => {
                // The worker restarted or dropped the shuffle: the location
                // record is stale. Forget it so recovery re-places the part.
                self.locations.lock().expect("locations lock").remove(&(shuffle, map_part));
                Err(FetchError::Lost)
            }
            other => Err(FetchError::Other(format!("unexpected block reply {other:?}"))),
        }
    }

    /// Map partitions of `shuffle` whose blocks are no longer reachable
    /// (holder dead, or never/no-longer placed), ascending.
    pub fn lost_parts(&self, shuffle: u64, num_maps: usize) -> Vec<usize> {
        let locations = self.locations.lock().expect("locations lock");
        (0..num_maps)
            .filter(|&p| match locations.get(&(shuffle, p as u64)) {
                Some(&w) => !self.workers[w].alive.load(Ordering::SeqCst),
                None => true,
            })
            .collect()
    }

    /// Releases a finished shuffle's blocks cluster-wide.
    pub fn drop_shuffle(&self, shuffle: u64) {
        self.locations.lock().expect("locations lock").retain(|&(s, _), _| s != shuffle);
        for w in &self.workers {
            if w.alive.load(Ordering::SeqCst) {
                let _ = w.send(&Msg::DropShuffle { shuffle });
            }
        }
    }

    /// Kills one worker for chaos testing: a real `SIGKILL` for process
    /// workers, the protocol `Die` (drop blocks, sever abruptly) for thread
    /// workers. Death is *detected*, not assumed: the supervisor or monitor
    /// declares the loss, exactly as for an organic crash.
    pub fn kill_worker(&self, worker: usize) {
        let Some(state) = self.workers.get(worker) else { return };
        let mut child = state.child.lock().expect("child lock");
        if let Some(child) = child.as_mut() {
            let _ = child.kill();
        } else {
            let _ = state.send(&Msg::Die);
        }
    }

    /// Blocks until a previously killed worker has been declared dead, so
    /// chaos tests can sequence kill → recovery deterministically.
    pub fn await_death(&self, worker: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if !self.workers[worker].alive.load(Ordering::SeqCst) {
                return true;
            }
            thread::sleep(Duration::from_millis(2));
        }
        false
    }

    /// Graceful teardown: stop supervision, tell every live worker to exit,
    /// and reap threads and processes. Idempotent; called by `Drop` and by
    /// [`SparkliteContext::shutdown_cluster`](crate::SparkliteContext::shutdown_cluster).
    /// After this returns no further executor events are emitted, so a
    /// metrics snapshot taken now reconciles exactly against the timeline.
    pub fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        for w in &self.workers {
            if w.alive.load(Ordering::SeqCst) {
                let _ = w.send(&Msg::Shutdown);
            }
        }
        if let Some(monitor) = self.monitor.lock().expect("monitor lock").take() {
            let _ = monitor.join();
        }
        // Drain wait: give each live worker a bounded window to answer the
        // `Shutdown` with its final event flush and goodbye before the
        // connections are severed. A healthy worker drains within one
        // control round trip; a wedged one is finalized as incomplete below.
        let drain_deadline = Instant::now() + Duration::from_secs(2);
        for w in &self.workers {
            while w.alive.load(Ordering::SeqCst)
                && !w.drained.load(Ordering::SeqCst)
                && Instant::now() < drain_deadline
            {
                thread::sleep(Duration::from_millis(1));
            }
        }
        for w in &self.workers {
            // A worker that is still alive but never said goodbye (wedged,
            // or slower than the drain window) has an incomplete stream.
            let cut = w.alive.load(Ordering::SeqCst) && !w.drained.load(Ordering::SeqCst);
            // Duplicate-handle sever first: it unblocks any thread still
            // parked in I/O on this worker without touching the I/O locks,
            // which that thread may be holding.
            w.sever();
            if let Some(stream) = w.control.lock().expect("control lock").take() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            if let Some(supervisor) = w.supervisor.lock().expect("supervisor lock").take() {
                let _ = supervisor.join();
            }
            if cut {
                // The supervisor has been joined, so this runs after the
                // last batch was merged (and no-ops if a late goodbye
                // finalized the stream first).
                self.finalize_stream(w, false);
            }
            if let Some(conn) = w.block_conn.lock().expect("block conn lock").take() {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
            if let Some(mut child) = w.child.lock().expect("child lock").take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            if let Some(handle) = w.worker_thread.lock().expect("worker thread lock").take() {
                let _ = handle.join();
            }
        }
    }

    /// Best-effort cleanup of half-started workers when `start` fails.
    fn abort_spawned(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        for w in &self.workers {
            w.sever();
            if let Some(stream) = w.control.lock().expect("control lock").take() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            if let Some(mut child) = w.child.lock().expect("child lock").take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            // Thread workers exit on their own once the control socket (or
            // the listener) goes away; detach rather than join so a worker
            // stuck in `connect` cannot hang the error path.
            drop(w.worker_thread.lock().expect("worker thread lock").take());
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Metrics;
    use std::io::Write;

    /// A bare cluster with `n` unregistered workers and no monitor thread —
    /// the scaffolding for driving registration and death paths directly.
    fn bare_cluster(n: usize) -> Arc<Cluster> {
        Arc::new(Cluster {
            events: Arc::new(EventBus::new(Arc::new(Metrics::default()))),
            epoch: Instant::now(),
            heartbeat_ms: 50,
            heartbeat_timeout_ms: 3000,
            event_capacity: 1 << 16,
            next_task: AtomicU64::new(0),
            workers: (0..n).map(|i| Arc::new(WorkerState::new(i))).collect(),
            locations: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            shutting_down: AtomicBool::new(false),
            monitor: Mutex::new(None),
        })
    }

    /// The silent-hang shape (a SIGSTOPped worker): the block service
    /// accepts a fetch, never answers, and keeps the socket open. The
    /// reducer parks in `recv` holding the `block_conn` mutex, and
    /// `declare_dead` (as the heartbeat monitor would call it) must sever
    /// the socket and return without blocking on that mutex.
    #[test]
    fn declare_dead_severs_a_hung_block_fetch_without_deadlocking() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake block service");
        let addr = listener.local_addr().expect("block addr").to_string();
        let (got_request, request_seen) = mpsc::channel();
        let service = thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("reducer connects");
            let _ = proto::recv_msg(&mut conn); // swallow the FetchBlock
            got_request.send(()).expect("test alive");
            let _ = proto::recv_msg(&mut conn); // park until the driver severs
        });

        let cluster = bare_cluster(1);
        cluster.workers[0].alive.store(true, Ordering::SeqCst);
        *cluster.workers[0].block_addr.lock().expect("block addr lock") = addr;
        cluster.locations.lock().expect("locations lock").insert((7, 0), 0);

        let fetcher = {
            let cluster = Arc::clone(&cluster);
            thread::spawn(move || cluster.fetch(7, 0, 0))
        };
        request_seen
            .recv_timeout(Duration::from_secs(10))
            .expect("fetch request never reached the block service");

        let start = Instant::now();
        cluster.declare_dead(0, "test: silent hang");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "declare_dead blocked behind the hung fetch's lock"
        );
        let fetched = fetcher.join().expect("fetcher thread");
        assert!(
            matches!(fetched, Err(FetchError::Lost)),
            "hung fetch should resolve to Lost, got {fetched:?}"
        );
        let _ = service.join();
    }

    /// Stray processes poking the loopback control port — connect-and-hang-up,
    /// garbage bytes, a `Register` for a worker index that doesn't exist —
    /// must each be dropped without aborting startup for the real worker.
    #[test]
    fn stray_connections_do_not_abort_registration() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind control");
        let addr = listener.local_addr().expect("control addr").to_string();
        listener.set_nonblocking(true).expect("control nonblocking");

        let cluster = bare_cluster(1);
        let worker = {
            let addr = addr.clone();
            thread::spawn(move || {
                drop(TcpStream::connect(&addr).expect("stray connects"));
                let mut garbage = TcpStream::connect(&addr).expect("stray connects");
                // An oversized length prefix: rejected at the frame layer.
                let _ = garbage.write_all(&[0xFF; 8]);
                drop(garbage);
                let mut impostor = TcpStream::connect(&addr).expect("stray connects");
                let _ = proto::send_msg(
                    &mut impostor,
                    &Msg::Register {
                        worker: 99,
                        pid: 1,
                        block_addr: "nowhere:0".to_string(),
                        clock_us: 0,
                    },
                );
                drop(impostor);
                let _ = run_worker(&addr, 0, Arc::new(NoRuntime));
            })
        };

        cluster
            .accept_registrations(&listener, 1)
            .expect("stray connections must not abort registration");
        assert_eq!(cluster.live_workers(), vec![0]);
        cluster.shutdown();
        let _ = worker.join();
    }
}
