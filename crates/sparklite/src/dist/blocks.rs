//! In-memory shuffle block store held by each worker.
//!
//! Blocks are keyed by `(shuffle, map partition, reduce partition)` and are
//! immutable once stored; the block service answers `FetchBlock` requests
//! straight out of this map.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// `(shuffle, map partition, reduce partition)`.
type BlockKey = (u64, u64, u64);

#[derive(Default)]
pub struct BlockStore {
    inner: Mutex<HashMap<BlockKey, Arc<Vec<u8>>>>,
}

impl BlockStore {
    pub fn new() -> BlockStore {
        BlockStore::default()
    }

    pub fn put(&self, shuffle: u64, map_part: u64, reduce_part: u64, bytes: Vec<u8>) {
        let mut inner = self.inner.lock().expect("block store poisoned");
        inner.insert((shuffle, map_part, reduce_part), Arc::new(bytes));
    }

    pub fn get(&self, shuffle: u64, map_part: u64, reduce_part: u64) -> Option<Arc<Vec<u8>>> {
        let inner = self.inner.lock().expect("block store poisoned");
        inner.get(&(shuffle, map_part, reduce_part)).cloned()
    }

    /// Releases every block belonging to a finished shuffle.
    pub fn drop_shuffle(&self, shuffle: u64) {
        let mut inner = self.inner.lock().expect("block store poisoned");
        inner.retain(|&(s, _, _), _| s != shuffle);
    }

    /// Drops everything — used by the chaos `Die` path so a "killed" thread
    /// worker really loses its blocks.
    pub fn clear(&self) {
        self.inner.lock().expect("block store poisoned").clear();
    }

    pub fn total_bytes(&self) -> u64 {
        let inner = self.inner.lock().expect("block store poisoned");
        inner.values().map(|b| b.len() as u64).sum()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("block store poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
