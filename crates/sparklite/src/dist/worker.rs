//! The executor worker: the `--executor` half of the distribution layer.
//!
//! A worker connects to the driver's control address, registers (announcing
//! the address of its block service), then loops over control messages —
//! running serialized tasks, storing their output blocks, and answering
//! shutdown. Two background threads run per worker: a heartbeat sender and
//! a block-service accept loop that serves `FetchBlock` requests from
//! reducers on dedicated per-connection handler threads.
//!
//! The same function backs both deployment modes: spawned as a thread by
//! [`Cluster`](super::Cluster) in [`DistMode::Threads`](crate::DistMode),
//! or called from the binary's `--executor` entry point in
//! [`DistMode::Processes`](crate::DistMode) — the protocol is identical, so
//! in-process tests exercise the exact wire path the process mode uses.

use super::blocks::BlockStore;
use super::proto::{self, Msg, TaskDesc};
use crate::events::Event;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Executes non-built-in task kinds on a worker. The driver names a kind in
/// each [`TaskDesc`]; the runtime maps it to code compiled into the worker
/// binary — tasks carry *data*, never closures. Returns the task's output
/// as `(reduce partition, encoded block)` pairs, which the worker stores
/// under the task's `(shuffle, map_part)` label.
pub trait TaskRuntime: Send + Sync {
    fn run(&self, task: &TaskDesc) -> Result<Vec<(u64, Vec<u8>)>, String>;
}

/// A runtime that knows no task kinds: every dispatch fails with a clear
/// error. Sufficient for pure shuffle serving (`store-blocks` is built in).
pub struct NoRuntime;

impl TaskRuntime for NoRuntime {
    fn run(&self, task: &TaskDesc) -> Result<Vec<(u64, Vec<u8>)>, String> {
        Err(format!("worker has no runtime for task kind {:?}", task.kind))
    }
}

fn send_locked(stream: &Mutex<TcpStream>, msg: &Msg) -> std::io::Result<()> {
    let mut s = stream.lock().expect("control stream poisoned");
    proto::send_msg(&mut *s, msg)
}

/// The worker's bounded executor-side event collector: events emitted by
/// the worker's own threads are stamped against the worker clock, given a
/// sequence number, and buffered until the next forward opportunity (each
/// heartbeat, each task reply, and the final flush at shutdown). When the
/// buffer is full the event is counted in `dropped` instead of buffered —
/// drops never consume sequence numbers, so the batches the driver sees
/// stay seq-contiguous and loss is reported explicitly, not inferred.
struct ForwardBuf {
    worker: u64,
    /// Worker clock epoch; `Register.clock_us` was measured against it, so
    /// the driver can translate these stamps into driver time.
    epoch: Instant,
    capacity: usize,
    state: Mutex<ForwardState>,
}

#[derive(Default)]
struct ForwardState {
    /// Sequence number the next *buffered* event will take.
    next_seq: u64,
    /// Cumulative events discarded because the buffer was full.
    dropped: u64,
    buf: Vec<(u64, Event)>,
}

impl ForwardBuf {
    fn new(worker: u64, epoch: Instant, capacity: usize) -> ForwardBuf {
        ForwardBuf { worker, epoch, capacity: capacity.max(1), state: Mutex::default() }
    }

    fn push(&self, ev: Event) {
        let at_us = self.epoch.elapsed().as_micros() as u64;
        let mut st = self.state.lock().expect("forward buffer poisoned");
        if st.buf.len() >= self.capacity {
            st.dropped += 1;
        } else {
            st.buf.push((at_us, ev));
            st.next_seq += 1;
        }
    }

    /// Takes the buffered batch as an `Events` message, or `None` when
    /// there is nothing new to report.
    fn drain(&self) -> Option<Msg> {
        let mut st = self.state.lock().expect("forward buffer poisoned");
        if st.buf.is_empty() && st.dropped == 0 {
            return None;
        }
        let events = std::mem::take(&mut st.buf);
        let first_seq = st.next_seq - events.len() as u64;
        Some(Msg::Events { worker: self.worker, first_seq, dropped: st.dropped, events })
    }

    /// Pushes one event and immediately forwards everything buffered.
    fn forward(&self, control: &Mutex<TcpStream>, ev: Event) {
        self.push(ev);
        self.flush(control);
    }

    fn flush(&self, control: &Mutex<TcpStream>) {
        if let Some(batch) = self.drain() {
            // A send failure means the driver is gone; the control loop
            // will observe the same condition and wind the worker down.
            let _ = send_locked(control, &batch);
        }
    }
}

/// Serves one block-service connection until the peer hangs up, forwarding
/// one `BlockFetch` event per block served.
fn serve_blocks(
    store: &BlockStore,
    mut conn: TcpStream,
    control: &Mutex<TcpStream>,
    buf: &ForwardBuf,
) {
    while let Ok(Some(msg)) = proto::recv_msg(&mut conn) {
        let (reply, served) = match msg {
            Msg::FetchBlock { shuffle, map_part, reduce_part } => {
                let started = Instant::now();
                match store.get(shuffle, map_part, reduce_part) {
                    Some(bytes) => {
                        let n = bytes.len() as u64;
                        (
                            Msg::BlockData { bytes: bytes.as_ref().clone() },
                            Some((shuffle, map_part, reduce_part, n, started)),
                        )
                    }
                    None => (Msg::BlockMissing { shuffle, map_part, reduce_part }, None),
                }
            }
            // Anything else on a block connection is a protocol error;
            // drop the connection and let the peer's read fail.
            _ => return,
        };
        if proto::send_msg(&mut conn, &reply).is_err() {
            return;
        }
        if let Some((shuffle, map_part, reduce_part, bytes, started)) = served {
            buf.forward(
                control,
                Event::BlockFetch {
                    shuffle,
                    map_part,
                    reduce_part,
                    bytes,
                    worker: buf.worker,
                    dur_us: started.elapsed().as_micros() as u64,
                },
            );
        }
    }
}

/// Runs one executor worker to completion: connect, register, serve. Returns
/// when the driver sends `Shutdown`/`Die` or the control connection drops.
pub fn run_worker(connect: &str, worker: u64, runtime: Arc<dyn TaskRuntime>) -> Result<(), String> {
    let control = TcpStream::connect(connect)
        .map_err(|e| format!("worker {worker}: connect {connect}: {e}"))?;
    proto::tune_stream(&control);
    let mut control_read =
        control.try_clone().map_err(|e| format!("worker {worker}: clone control: {e}"))?;
    let control_write = Arc::new(Mutex::new(control));

    let store = Arc::new(BlockStore::new());
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| format!("worker {worker}: bind block service: {e}"))?;
    let block_addr = listener
        .local_addr()
        .map_err(|e| format!("worker {worker}: block service addr: {e}"))?
        .to_string();

    // Worker clock epoch: `Register.clock_us` is measured against it, so
    // the driver's offset math covers the full registration round trip.
    let epoch = Instant::now();
    let pid = std::process::id() as u64;
    send_locked(
        &control_write,
        &Msg::Register {
            worker,
            pid,
            block_addr: block_addr.clone(),
            clock_us: epoch.elapsed().as_micros() as u64,
        },
    )
    .map_err(|e| format!("worker {worker}: register: {e}"))?;
    let (heartbeat_ms, event_capacity) = match proto::recv_msg(&mut control_read) {
        Ok(Some(Msg::RegisterAck { heartbeat_ms, event_capacity })) => {
            (heartbeat_ms, event_capacity)
        }
        other => return Err(format!("worker {worker}: expected RegisterAck, got {other:?}")),
    };
    let buf = Arc::new(ForwardBuf::new(worker, epoch, event_capacity as usize));
    // Eagerly flushed so the driver's registration handler can fold the
    // event in before it reports the worker as registered.
    buf.forward(&control_write, Event::ExecutorRegistered { worker, pid });

    let stop = Arc::new(AtomicBool::new(false));

    // Block service: accept loop + one handler thread per reducer connection.
    let accept_handle = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let control_write = Arc::clone(&control_write);
        let buf = Arc::clone(&buf);
        thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Ok(conn) = conn {
                    proto::tune_stream(&conn);
                    let store = Arc::clone(&store);
                    let control_write = Arc::clone(&control_write);
                    let buf = Arc::clone(&buf);
                    thread::spawn(move || serve_blocks(&store, conn, &control_write, &buf));
                }
            }
        })
    };

    // Heartbeats: periodic beats on the shared control write-half. A send
    // failure means the driver is gone; the control read loop will see the
    // same condition and exit.
    let beat_handle = {
        let control_write = Arc::clone(&control_write);
        let stop = Arc::clone(&stop);
        let buf = Arc::clone(&buf);
        thread::spawn(move || {
            let mut seq = 0u64;
            loop {
                // Sleep one cadence in small slices so a long cadence never
                // delays shutdown by more than ~25 ms.
                let mut slept = 0u64;
                while slept < heartbeat_ms {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let step = (heartbeat_ms - slept).min(25);
                    thread::sleep(Duration::from_millis(step));
                    slept += step;
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                // Each beat piggybacks the buffered event batch: the beat's
                // own event first, then the batch, then the heartbeat.
                buf.push(Event::ExecutorHeartbeat { worker, seq });
                buf.flush(&control_write);
                if send_locked(&control_write, &Msg::Heartbeat { worker, seq }).is_err() {
                    return;
                }
                seq += 1;
            }
        })
    };

    // Control loop: tasks, shuffle drops, shutdown. The loop also ends on
    // clean EOF or a read error — either way the driver is gone.
    let mut abrupt = false;
    while let Ok(Some(msg)) = proto::recv_msg(&mut control_read) {
        match msg {
            Msg::LaunchTask { task } => {
                let result = if task.kind == "store-blocks" {
                    proto::decode_store_payload(&task.payload)
                } else {
                    runtime.run(&task)
                };
                let reply = match result {
                    Ok(blocks) => {
                        let started = Instant::now();
                        let (n, bytes) =
                            (blocks.len() as u64, blocks.iter().map(|(_, b)| b.len() as u64).sum());
                        for (reduce, block) in blocks {
                            store.put(task.shuffle, task.map_part, reduce, block);
                        }
                        buf.push(Event::BlockPush {
                            shuffle: task.shuffle,
                            map_part: task.map_part,
                            blocks: n,
                            bytes,
                            worker,
                            dur_us: started.elapsed().as_micros() as u64,
                        });
                        Msg::TaskDone { task: task.id, blocks: n, bytes }
                    }
                    Err(error) => Msg::TaskFailed { task: task.id, error },
                };
                // The event batch goes out *before* the task reply so the
                // driver's counters are already updated when the dispatch
                // call returns.
                buf.flush(&control_write);
                if send_locked(&control_write, &reply).is_err() {
                    break;
                }
            }
            Msg::DropShuffle { shuffle } => store.drop_shuffle(shuffle),
            Msg::Shutdown => {
                // Final flush: everything still buffered, then a goodbye so
                // the driver knows the stream is complete (vs. lost).
                buf.flush(&control_write);
                let _ = send_locked(&control_write, &Msg::Goodbye { worker });
                break;
            }
            Msg::Die => {
                // Chaos path for thread-mode workers: lose every block and
                // vanish without a goodbye, like a SIGKILLed process.
                store.clear();
                abrupt = true;
                break;
            }
            _ => break, // protocol error on the control plane
        }
    }

    stop.store(true, Ordering::Relaxed);
    if abrupt {
        // Sever the control connection immediately so the driver's
        // supervisor sees EOF even though this (thread) worker can't
        // actually exit the process.
        if let Ok(s) = control_write.lock() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
    // Wake the accept loop with a no-op connection so it observes `stop`.
    let _ = TcpStream::connect(&block_addr);
    let _ = beat_handle.join();
    let _ = accept_handle.join();
    Ok(())
}
