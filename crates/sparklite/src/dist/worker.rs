//! The executor worker: the `--executor` half of the distribution layer.
//!
//! A worker connects to the driver's control address, registers (announcing
//! the address of its block service), then loops over control messages —
//! running serialized tasks, storing their output blocks, and answering
//! shutdown. Two background threads run per worker: a heartbeat sender and
//! a block-service accept loop that serves `FetchBlock` requests from
//! reducers on dedicated per-connection handler threads.
//!
//! The same function backs both deployment modes: spawned as a thread by
//! [`Cluster`](super::Cluster) in [`DistMode::Threads`](crate::DistMode),
//! or called from the binary's `--executor` entry point in
//! [`DistMode::Processes`](crate::DistMode) — the protocol is identical, so
//! in-process tests exercise the exact wire path the process mode uses.

use super::blocks::BlockStore;
use super::proto::{self, Msg, TaskDesc};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Executes non-built-in task kinds on a worker. The driver names a kind in
/// each [`TaskDesc`]; the runtime maps it to code compiled into the worker
/// binary — tasks carry *data*, never closures. Returns the task's output
/// as `(reduce partition, encoded block)` pairs, which the worker stores
/// under the task's `(shuffle, map_part)` label.
pub trait TaskRuntime: Send + Sync {
    fn run(&self, task: &TaskDesc) -> Result<Vec<(u64, Vec<u8>)>, String>;
}

/// A runtime that knows no task kinds: every dispatch fails with a clear
/// error. Sufficient for pure shuffle serving (`store-blocks` is built in).
pub struct NoRuntime;

impl TaskRuntime for NoRuntime {
    fn run(&self, task: &TaskDesc) -> Result<Vec<(u64, Vec<u8>)>, String> {
        Err(format!("worker has no runtime for task kind {:?}", task.kind))
    }
}

fn send_locked(stream: &Mutex<TcpStream>, msg: &Msg) -> std::io::Result<()> {
    let mut s = stream.lock().expect("control stream poisoned");
    proto::send_msg(&mut *s, msg)
}

/// Serves one block-service connection until the peer hangs up.
fn serve_blocks(store: &BlockStore, mut conn: TcpStream) {
    while let Ok(Some(msg)) = proto::recv_msg(&mut conn) {
        let reply = match msg {
            Msg::FetchBlock { shuffle, map_part, reduce_part } => {
                match store.get(shuffle, map_part, reduce_part) {
                    Some(bytes) => Msg::BlockData { bytes: bytes.as_ref().clone() },
                    None => Msg::BlockMissing { shuffle, map_part, reduce_part },
                }
            }
            // Anything else on a block connection is a protocol error;
            // drop the connection and let the peer's read fail.
            _ => return,
        };
        if proto::send_msg(&mut conn, &reply).is_err() {
            return;
        }
    }
}

/// Runs one executor worker to completion: connect, register, serve. Returns
/// when the driver sends `Shutdown`/`Die` or the control connection drops.
pub fn run_worker(connect: &str, worker: u64, runtime: Arc<dyn TaskRuntime>) -> Result<(), String> {
    let control = TcpStream::connect(connect)
        .map_err(|e| format!("worker {worker}: connect {connect}: {e}"))?;
    proto::tune_stream(&control);
    let mut control_read =
        control.try_clone().map_err(|e| format!("worker {worker}: clone control: {e}"))?;
    let control_write = Arc::new(Mutex::new(control));

    let store = Arc::new(BlockStore::new());
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| format!("worker {worker}: bind block service: {e}"))?;
    let block_addr = listener
        .local_addr()
        .map_err(|e| format!("worker {worker}: block service addr: {e}"))?
        .to_string();

    send_locked(
        &control_write,
        &Msg::Register { worker, pid: std::process::id() as u64, block_addr: block_addr.clone() },
    )
    .map_err(|e| format!("worker {worker}: register: {e}"))?;
    let heartbeat_ms = match proto::recv_msg(&mut control_read) {
        Ok(Some(Msg::RegisterAck { heartbeat_ms })) => heartbeat_ms,
        other => return Err(format!("worker {worker}: expected RegisterAck, got {other:?}")),
    };

    let stop = Arc::new(AtomicBool::new(false));

    // Block service: accept loop + one handler thread per reducer connection.
    let accept_handle = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Ok(conn) = conn {
                    proto::tune_stream(&conn);
                    let store = Arc::clone(&store);
                    thread::spawn(move || serve_blocks(&store, conn));
                }
            }
        })
    };

    // Heartbeats: periodic beats on the shared control write-half. A send
    // failure means the driver is gone; the control read loop will see the
    // same condition and exit.
    let beat_handle = {
        let control_write = Arc::clone(&control_write);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut seq = 0u64;
            loop {
                // Sleep one cadence in small slices so a long cadence never
                // delays shutdown by more than ~25 ms.
                let mut slept = 0u64;
                while slept < heartbeat_ms {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let step = (heartbeat_ms - slept).min(25);
                    thread::sleep(Duration::from_millis(step));
                    slept += step;
                }
                if stop.load(Ordering::Relaxed)
                    || send_locked(&control_write, &Msg::Heartbeat { worker, seq }).is_err()
                {
                    return;
                }
                seq += 1;
            }
        })
    };

    // Control loop: tasks, shuffle drops, shutdown. The loop also ends on
    // clean EOF or a read error — either way the driver is gone.
    let mut abrupt = false;
    while let Ok(Some(msg)) = proto::recv_msg(&mut control_read) {
        match msg {
            Msg::LaunchTask { task } => {
                let result = if task.kind == "store-blocks" {
                    proto::decode_store_payload(&task.payload)
                } else {
                    runtime.run(&task)
                };
                let reply = match result {
                    Ok(blocks) => {
                        let (n, bytes) =
                            (blocks.len() as u64, blocks.iter().map(|(_, b)| b.len() as u64).sum());
                        for (reduce, block) in blocks {
                            store.put(task.shuffle, task.map_part, reduce, block);
                        }
                        Msg::TaskDone { task: task.id, blocks: n, bytes }
                    }
                    Err(error) => Msg::TaskFailed { task: task.id, error },
                };
                if send_locked(&control_write, &reply).is_err() {
                    break;
                }
            }
            Msg::DropShuffle { shuffle } => store.drop_shuffle(shuffle),
            Msg::Shutdown => break,
            Msg::Die => {
                // Chaos path for thread-mode workers: lose every block and
                // vanish without a goodbye, like a SIGKILLed process.
                store.clear();
                abrupt = true;
                break;
            }
            _ => break, // protocol error on the control plane
        }
    }

    stop.store(true, Ordering::Relaxed);
    if abrupt {
        // Sever the control connection immediately so the driver's
        // supervisor sees EOF even though this (thread) worker can't
        // actually exit the process.
        if let Ok(s) = control_write.lock() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
    // Wake the accept loop with a no-op connection so it observes `stop`.
    let _ = TcpStream::connect(&block_addr);
    let _ = beat_handle.join();
    let _ = accept_handle.join();
    Ok(())
}
