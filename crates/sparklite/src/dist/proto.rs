//! The distribution wire protocol: length-prefixed frames carrying typed
//! control and data messages between the driver and executor processes.
//!
//! Everything on the wire is a **frame**: a 4-byte little-endian length
//! followed by that many body bytes, capped at [`MAX_FRAME`] so a corrupt
//! or hostile peer cannot make the receiver allocate unboundedly. Frame
//! bodies are [`Msg`] values encoded with the same tag + LEB128-varint
//! vocabulary the row and item codecs use — no external serialization
//! framework, and nothing on the wire is a closure: work crosses the
//! boundary only as a partition-labelled [`TaskDesc`] (kind + opaque
//! payload bytes), which is what forces the clean serialization boundary
//! the distribution layer is built around.
//!
//! Two framings exist for reading:
//!
//! * [`read_frame`] — blocking, for socket loops;
//! * [`FrameDecoder`] — push-based, fed arbitrary byte chunks, for tests
//!   that exercise partial reads and oversized-frame rejection without a
//!   socket in the loop.

use crate::events::Event;
use std::io::{self, Read, Write};

/// Upper bound on one frame's body, in bytes. Large enough for any shuffle
/// block the harness produces; small enough that a corrupted length prefix
/// fails fast instead of triggering a giant allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one length-prefixed frame and flushes. Header and body go out as
/// a single write: two small writes per frame would interact with Nagle's
/// algorithm and delayed ACKs to cost a ~40 ms round trip *per frame* on
/// loopback TCP (sockets also disable Nagle, belt and braces — see
/// [`tune_stream`]).
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", body.len()),
        ));
    }
    let mut framed = Vec::with_capacity(4 + body.len());
    framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
    framed.extend_from_slice(body);
    w.write_all(&framed)?;
    w.flush()
}

/// Latency settings for a protocol socket: disables Nagle's algorithm so
/// small control frames (heartbeats, task replies, fetch requests) leave
/// immediately instead of waiting out a delayed-ACK window. Applied to
/// every control and block-service stream, on both the connect and accept
/// side. Failure is ignored — it is a latency tweak, not a correctness
/// requirement.
pub fn tune_stream(stream: &std::net::TcpStream) {
    let _ = stream.set_nodelay(true);
}

/// Reads one frame. Returns `Ok(None)` on a clean end-of-stream (the peer
/// closed between frames); an EOF mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < len.len() {
        match r.read(&mut len[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid frame header",
                ))
            }
            n => got += n,
        }
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; n];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Incremental frame decoder: feed it byte chunks of any size (including
/// single bytes) and it yields every complete frame, buffering partial
/// ones. Oversized length prefixes are rejected *before* any body byte is
/// buffered.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Bytes buffered waiting for the rest of a frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Appends `chunk` and drains every frame completed by it, in order.
    pub fn push(&mut self, chunk: &[u8]) -> Result<Vec<Vec<u8>>, String> {
        self.buf.extend_from_slice(chunk);
        let mut frames = Vec::new();
        loop {
            if self.buf.len() < 4 {
                return Ok(frames);
            }
            let n = u32::from_le_bytes(self.buf[..4].try_into().expect("4 header bytes")) as usize;
            if n > MAX_FRAME {
                return Err(format!("frame of {n} bytes exceeds MAX_FRAME"));
            }
            if self.buf.len() < 4 + n {
                return Ok(frames);
            }
            frames.push(self.buf[4..4 + n].to_vec());
            self.buf.drain(..4 + n);
        }
    }
}

// ---------------------------------------------------------------------------
// Varint primitives (shared vocabulary with the row/item codecs)
// ---------------------------------------------------------------------------

pub(crate) fn write_varu(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varu(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    write_varu(out, b.len() as u64);
    out.extend_from_slice(b);
}

pub(crate) struct Wire<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Wire<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Wire<'a> {
        Wire { buf, pos: 0 }
    }

    fn corrupt(&self) -> String {
        format!("corrupt message at byte {}", self.pos)
    }

    fn byte(&mut self) -> Result<u8, String> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.corrupt())?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn varu(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.corrupt())
    }

    pub(crate) fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let n = self.varu()? as usize;
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| self.corrupt())?;
        let b = self.buf[self.pos..end].to_vec();
        self.pos = end;
        Ok(b)
    }

    fn string(&mut self) -> Result<String, String> {
        let raw = self.bytes()?;
        String::from_utf8(raw).map_err(|_| self.corrupt())
    }

    fn done(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after message", self.buf.len() - self.pos))
        }
    }
}

// ---------------------------------------------------------------------------
// Task descriptors: the serialization boundary
// ---------------------------------------------------------------------------

/// A partition-labelled description of work shipped to an executor process.
/// Nothing here is a closure: `kind` names a handler the worker's
/// [`TaskRuntime`](super::TaskRuntime) registers, `payload` is that
/// handler's opaque serialized input, and `(shuffle, map_part)` label where
/// the task's output blocks land in the worker's block store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDesc {
    /// Driver-assigned id, echoed by `TaskDone`/`TaskFailed`.
    pub id: u64,
    /// The shuffle the task's output blocks belong to.
    pub shuffle: u64,
    /// The map partition label of the output blocks.
    pub map_part: u64,
    /// Handler name: `"store-blocks"` is built into every worker; other
    /// kinds dispatch through the worker's task runtime.
    pub kind: String,
    /// Serialized task input (for `store-blocks`: the encoded per-reducer
    /// blocks, see [`encode_store_payload`]).
    pub payload: Vec<u8>,
}

/// Encodes the `store-blocks` payload: a count, then `(reduce partition,
/// block bytes)` entries.
pub fn encode_store_payload(blocks: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let total: usize = blocks.iter().map(|(_, b)| b.len() + 12).sum();
    let mut out = Vec::with_capacity(total + 4);
    write_varu(&mut out, blocks.len() as u64);
    for (reduce, bytes) in blocks {
        write_varu(&mut out, *reduce);
        write_bytes(&mut out, bytes);
    }
    out
}

/// Decodes a `store-blocks` payload back into `(reduce partition, block)`
/// entries.
pub fn decode_store_payload(payload: &[u8]) -> Result<Vec<(u64, Vec<u8>)>, String> {
    let mut w = Wire::new(payload);
    let n = w.varu()? as usize;
    if n > payload.len() + 1 {
        return Err("corrupt store payload: impossible block count".to_string());
    }
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        let reduce = w.varu()?;
        blocks.push((reduce, w.bytes()?));
    }
    w.done()?;
    Ok(blocks)
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

const TAG_REGISTER: u8 = 0;
const TAG_REGISTER_ACK: u8 = 1;
const TAG_HEARTBEAT: u8 = 2;
const TAG_LAUNCH_TASK: u8 = 3;
const TAG_TASK_DONE: u8 = 4;
const TAG_TASK_FAILED: u8 = 5;
const TAG_FETCH_BLOCK: u8 = 6;
const TAG_BLOCK_DATA: u8 = 7;
const TAG_BLOCK_MISSING: u8 = 8;
const TAG_DROP_SHUFFLE: u8 = 9;
const TAG_SHUTDOWN: u8 = 10;
const TAG_DIE: u8 = 11;
const TAG_EVENTS: u8 = 12;
const TAG_GOODBYE: u8 = 13;

// Wire tags for the forwardable [`Event`] subset carried by `Msg::Events`.
// Only events a worker actually emits cross the wire; variants carrying
// `&'static str` or driver-only context are not forwardable and the codec
// rejects them rather than inventing a lossy encoding.
const EV_EXECUTOR_REGISTERED: u8 = 0;
const EV_EXECUTOR_HEARTBEAT: u8 = 1;
const EV_BLOCK_PUSH: u8 = 2;
const EV_BLOCK_FETCH: u8 = 3;

fn encode_event(out: &mut Vec<u8>, ev: &Event) {
    match ev {
        Event::ExecutorRegistered { worker, pid } => {
            out.push(EV_EXECUTOR_REGISTERED);
            write_varu(out, *worker);
            write_varu(out, *pid);
        }
        Event::ExecutorHeartbeat { worker, seq } => {
            out.push(EV_EXECUTOR_HEARTBEAT);
            write_varu(out, *worker);
            write_varu(out, *seq);
        }
        Event::BlockPush { shuffle, map_part, blocks, bytes, worker, dur_us } => {
            out.push(EV_BLOCK_PUSH);
            write_varu(out, *shuffle);
            write_varu(out, *map_part);
            write_varu(out, *blocks);
            write_varu(out, *bytes);
            write_varu(out, *worker);
            write_varu(out, *dur_us);
        }
        Event::BlockFetch { shuffle, map_part, reduce_part, bytes, worker, dur_us } => {
            out.push(EV_BLOCK_FETCH);
            write_varu(out, *shuffle);
            write_varu(out, *map_part);
            write_varu(out, *reduce_part);
            write_varu(out, *bytes);
            write_varu(out, *worker);
            write_varu(out, *dur_us);
        }
        other => unreachable!("event {} is not wire-forwardable", other.name()),
    }
}

fn decode_event(w: &mut Wire<'_>) -> Result<Event, String> {
    Ok(match w.byte()? {
        EV_EXECUTOR_REGISTERED => Event::ExecutorRegistered { worker: w.varu()?, pid: w.varu()? },
        EV_EXECUTOR_HEARTBEAT => Event::ExecutorHeartbeat { worker: w.varu()?, seq: w.varu()? },
        EV_BLOCK_PUSH => Event::BlockPush {
            shuffle: w.varu()?,
            map_part: w.varu()?,
            blocks: w.varu()?,
            bytes: w.varu()?,
            worker: w.varu()?,
            dur_us: w.varu()?,
        },
        EV_BLOCK_FETCH => Event::BlockFetch {
            shuffle: w.varu()?,
            map_part: w.varu()?,
            reduce_part: w.varu()?,
            bytes: w.varu()?,
            worker: w.varu()?,
            dur_us: w.varu()?,
        },
        other => return Err(format!("unknown forwarded-event tag {other}")),
    })
}

/// A protocol message. Control-plane messages (registration, heartbeats,
/// task dispatch/completion, shutdown) flow on the driver↔worker control
/// connection; data-plane messages (`FetchBlock`/`BlockData`) flow on
/// connections to the worker's block service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Worker → driver, first message on the control connection. The worker
    /// advertises the address of its block service and its monotonic clock
    /// reading (µs since its event epoch) so the driver can measure a clock
    /// offset for merging forwarded event timestamps. The offset is
    /// *recorded*, never trusted for ordering — sequence numbers order the
    /// stream.
    Register { worker: u64, pid: u64, block_addr: String, clock_us: u64 },
    /// Driver → worker: registration accepted; heartbeat cadence to honour
    /// and the capacity of the worker's bounded event forward buffer.
    RegisterAck { heartbeat_ms: u64, event_capacity: u64 },
    /// Worker → driver, every `heartbeat_ms`; the driver declares a worker
    /// lost when its deadline (`heartbeat_timeout_ms`) lapses.
    Heartbeat { worker: u64, seq: u64 },
    /// Driver → worker: execute a serialized task.
    LaunchTask { task: TaskDesc },
    /// Worker → driver: the task stored `blocks` output blocks totalling
    /// `bytes` bytes.
    TaskDone { task: u64, blocks: u64, bytes: u64 },
    /// Worker → driver: the task failed; the driver decides what recovers.
    TaskFailed { task: u64, error: String },
    /// Reducer → block service: request one map-output block.
    FetchBlock { shuffle: u64, map_part: u64, reduce_part: u64 },
    /// Block service → reducer: the requested block's bytes.
    BlockData { bytes: Vec<u8> },
    /// Block service → reducer: the block is not held here (the worker
    /// restarted or the shuffle was dropped); the driver treats this like a
    /// lost executor and recovers from lineage.
    BlockMissing { shuffle: u64, map_part: u64, reduce_part: u64 },
    /// Driver → worker: release every block of a finished shuffle.
    DropShuffle { shuffle: u64 },
    /// Driver → worker: exit cleanly.
    Shutdown,
    /// Driver → worker (chaos only): drop every block and die abruptly,
    /// without a goodbye — simulates a killed executor for in-process
    /// (thread-mode) workers, where a real `SIGKILL` is not available.
    Die,
    /// Worker → driver: a batch of forwarded executor events. `first_seq`
    /// is the sequence number of `events[0]` (consecutive within the
    /// batch); `dropped` is the cumulative count the worker's bounded
    /// forward buffer has discarded so far, so the driver can account for
    /// loss instead of silently missing events. Each entry pairs the
    /// worker-clock timestamp (µs since the worker's epoch) with the event.
    Events { worker: u64, first_seq: u64, dropped: u64, events: Vec<(u64, Event)> },
    /// Worker → driver, last message before a clean shutdown exit: every
    /// buffered event has been flushed. A worker that dies without a
    /// goodbye had its un-forwarded tail marked lost.
    Goodbye { worker: u64 },
}

impl Msg {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Msg::Register { worker, pid, block_addr, clock_us } => {
                out.push(TAG_REGISTER);
                write_varu(&mut out, *worker);
                write_varu(&mut out, *pid);
                write_str(&mut out, block_addr);
                write_varu(&mut out, *clock_us);
            }
            Msg::RegisterAck { heartbeat_ms, event_capacity } => {
                out.push(TAG_REGISTER_ACK);
                write_varu(&mut out, *heartbeat_ms);
                write_varu(&mut out, *event_capacity);
            }
            Msg::Heartbeat { worker, seq } => {
                out.push(TAG_HEARTBEAT);
                write_varu(&mut out, *worker);
                write_varu(&mut out, *seq);
            }
            Msg::LaunchTask { task } => {
                out.push(TAG_LAUNCH_TASK);
                write_varu(&mut out, task.id);
                write_varu(&mut out, task.shuffle);
                write_varu(&mut out, task.map_part);
                write_str(&mut out, &task.kind);
                write_bytes(&mut out, &task.payload);
            }
            Msg::TaskDone { task, blocks, bytes } => {
                out.push(TAG_TASK_DONE);
                write_varu(&mut out, *task);
                write_varu(&mut out, *blocks);
                write_varu(&mut out, *bytes);
            }
            Msg::TaskFailed { task, error } => {
                out.push(TAG_TASK_FAILED);
                write_varu(&mut out, *task);
                write_str(&mut out, error);
            }
            Msg::FetchBlock { shuffle, map_part, reduce_part }
            | Msg::BlockMissing { shuffle, map_part, reduce_part } => {
                out.push(if matches!(self, Msg::FetchBlock { .. }) {
                    TAG_FETCH_BLOCK
                } else {
                    TAG_BLOCK_MISSING
                });
                write_varu(&mut out, *shuffle);
                write_varu(&mut out, *map_part);
                write_varu(&mut out, *reduce_part);
            }
            Msg::BlockData { bytes } => {
                out.push(TAG_BLOCK_DATA);
                write_bytes(&mut out, bytes);
            }
            Msg::DropShuffle { shuffle } => {
                out.push(TAG_DROP_SHUFFLE);
                write_varu(&mut out, *shuffle);
            }
            Msg::Shutdown => out.push(TAG_SHUTDOWN),
            Msg::Die => out.push(TAG_DIE),
            Msg::Events { worker, first_seq, dropped, events } => {
                out.push(TAG_EVENTS);
                write_varu(&mut out, *worker);
                write_varu(&mut out, *first_seq);
                write_varu(&mut out, *dropped);
                write_varu(&mut out, events.len() as u64);
                for (at_us, ev) in events {
                    write_varu(&mut out, *at_us);
                    encode_event(&mut out, ev);
                }
            }
            Msg::Goodbye { worker } => {
                out.push(TAG_GOODBYE);
                write_varu(&mut out, *worker);
            }
        }
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Msg, String> {
        let mut w = Wire::new(buf);
        let msg = match w.byte()? {
            TAG_REGISTER => Msg::Register {
                worker: w.varu()?,
                pid: w.varu()?,
                block_addr: w.string()?,
                clock_us: w.varu()?,
            },
            TAG_REGISTER_ACK => {
                Msg::RegisterAck { heartbeat_ms: w.varu()?, event_capacity: w.varu()? }
            }
            TAG_HEARTBEAT => Msg::Heartbeat { worker: w.varu()?, seq: w.varu()? },
            TAG_LAUNCH_TASK => Msg::LaunchTask {
                task: TaskDesc {
                    id: w.varu()?,
                    shuffle: w.varu()?,
                    map_part: w.varu()?,
                    kind: w.string()?,
                    payload: w.bytes()?,
                },
            },
            TAG_TASK_DONE => Msg::TaskDone { task: w.varu()?, blocks: w.varu()?, bytes: w.varu()? },
            TAG_TASK_FAILED => Msg::TaskFailed { task: w.varu()?, error: w.string()? },
            TAG_FETCH_BLOCK => {
                Msg::FetchBlock { shuffle: w.varu()?, map_part: w.varu()?, reduce_part: w.varu()? }
            }
            TAG_BLOCK_DATA => Msg::BlockData { bytes: w.bytes()? },
            TAG_BLOCK_MISSING => Msg::BlockMissing {
                shuffle: w.varu()?,
                map_part: w.varu()?,
                reduce_part: w.varu()?,
            },
            TAG_DROP_SHUFFLE => Msg::DropShuffle { shuffle: w.varu()? },
            TAG_SHUTDOWN => Msg::Shutdown,
            TAG_DIE => Msg::Die,
            TAG_EVENTS => {
                let worker = w.varu()?;
                let first_seq = w.varu()?;
                let dropped = w.varu()?;
                let n = w.varu()? as usize;
                if n > buf.len() {
                    return Err("corrupt event batch: impossible event count".to_string());
                }
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    let at_us = w.varu()?;
                    events.push((at_us, decode_event(&mut w)?));
                }
                Msg::Events { worker, first_seq, dropped, events }
            }
            TAG_GOODBYE => Msg::Goodbye { worker: w.varu()? },
            other => return Err(format!("unknown message tag {other}")),
        };
        w.done()?;
        Ok(msg)
    }
}

/// Writes one message as a frame.
pub fn send_msg(w: &mut impl Write, msg: &Msg) -> io::Result<()> {
    write_frame(w, &msg.encode())
}

/// Reads one message frame; `Ok(None)` on clean end-of-stream.
pub fn recv_msg(r: &mut impl Read) -> io::Result<Option<Msg>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => {
            Msg::decode(&body).map(Some).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn decoder_handles_byte_at_a_time_delivery() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"ab").unwrap();
        write_frame(&mut buf, b"cdef").unwrap();
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for b in &buf {
            frames.extend(dec.push(std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(frames, vec![b"ab".to_vec(), b"cdef".to_vec()]);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let header = ((MAX_FRAME as u32) + 1).to_le_bytes();
        assert!(FrameDecoder::new().push(&header).is_err());
        let mut r = &header[..];
        assert!(read_frame(&mut r).is_err());
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut Vec::new(), &huge).is_err());
    }

    #[test]
    fn message_roundtrip() {
        let msgs = vec![
            Msg::Register {
                worker: 3,
                pid: 4242,
                block_addr: "127.0.0.1:5555".to_string(),
                clock_us: 987654,
            },
            Msg::RegisterAck { heartbeat_ms: 25, event_capacity: 65536 },
            Msg::Heartbeat { worker: 3, seq: 17 },
            Msg::LaunchTask {
                task: TaskDesc {
                    id: 9,
                    shuffle: 2,
                    map_part: 5,
                    kind: "store-blocks".to_string(),
                    payload: vec![1, 2, 3],
                },
            },
            Msg::TaskDone { task: 9, blocks: 4, bytes: 1024 },
            Msg::TaskFailed { task: 9, error: "boom".to_string() },
            Msg::FetchBlock { shuffle: 2, map_part: 5, reduce_part: 1 },
            Msg::BlockData { bytes: vec![0, 255, 7] },
            Msg::BlockMissing { shuffle: 2, map_part: 5, reduce_part: 1 },
            Msg::DropShuffle { shuffle: 2 },
            Msg::Shutdown,
            Msg::Die,
            Msg::Events {
                worker: 3,
                first_seq: 40,
                dropped: 2,
                events: vec![
                    (10, Event::ExecutorRegistered { worker: 3, pid: 4242 }),
                    (20, Event::ExecutorHeartbeat { worker: 3, seq: 1 }),
                    (
                        30,
                        Event::BlockPush {
                            shuffle: 2,
                            map_part: 5,
                            blocks: 4,
                            bytes: 1024,
                            worker: 3,
                            dur_us: 7,
                        },
                    ),
                    (
                        40,
                        Event::BlockFetch {
                            shuffle: 2,
                            map_part: 5,
                            reduce_part: 1,
                            bytes: 256,
                            worker: 3,
                            dur_us: 9,
                        },
                    ),
                ],
            },
            Msg::Events { worker: 0, first_seq: 0, dropped: 0, events: Vec::new() },
            Msg::Goodbye { worker: 3 },
        ];
        for m in msgs {
            assert_eq!(Msg::decode(&m.encode()).unwrap(), m);
        }
        assert!(Msg::decode(&[200]).is_err());
        assert!(Msg::decode(&[]).is_err());
        // A forwarded-event batch with an unknown event tag is rejected.
        let mut bad = vec![TAG_EVENTS];
        for v in [0u64, 0, 0, 1, 5] {
            write_varu(&mut bad, v);
        }
        bad.push(200);
        assert!(Msg::decode(&bad).is_err());
    }

    #[test]
    fn store_payload_roundtrip() {
        let blocks = vec![(0u64, vec![1, 2]), (3u64, Vec::new()), (1u64, vec![9; 100])];
        let enc = encode_store_payload(&blocks);
        assert_eq!(decode_store_payload(&enc).unwrap(), blocks);
        assert!(decode_store_payload(&enc[..enc.len() - 1]).is_err());
    }
}
