//! The distribution layer: multi-process executors and the shuffle block
//! service.
//!
//! Local threaded mode remains the default and is untouched by this module
//! — with [`DistMode::Off`](crate::DistMode) no socket is ever opened. With
//! a cluster configured, the driver spawns N executor workers (threads for
//! tests, real OS processes for deployment), and shuffle map outputs are
//! *pushed* to worker block stores as encoded blocks, then *fetched* back
//! by reduce tasks over TCP — the serialization boundary that makes
//! executor death a recoverable, observable event rather than a simulated
//! one. See DESIGN.md §12 for the protocol and the recovery state machine.

mod blocks;
mod cluster;
mod proto;
mod worker;

pub use blocks::BlockStore;
pub use cluster::{Cluster, FetchError, ForwardStats};
pub use proto::{
    decode_store_payload, encode_store_payload, read_frame, recv_msg, send_msg, write_frame,
    FrameDecoder, Msg, TaskDesc, MAX_FRAME,
};
pub use worker::{run_worker, NoRuntime, TaskRuntime};
