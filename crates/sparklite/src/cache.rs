//! The storage/caching subsystem: partition-granular persist with a
//! budgeted memory manager (paper §4.10/§5.6 — Rumble leans on Spark's
//! storage layer whenever a sequence is consumed more than once).
//!
//! [`Rdd::persist`](crate::rdd::Rdd::persist) wraps an operator in a
//! [`CachedRdd`]: the first task to compute a partition stores it in the
//! [`CacheManager`] owned by the driver [`Core`] — populated *inside*
//! `compute`, executor-side, with no driver round-trip — and every later
//! computation of that partition serves from memory. Storage is bounded by
//! a configurable byte budget with LRU eviction; an evicted (or
//! chaos-injected, see `FaultInjector::on_cached_read`) cached read
//! silently falls back to recomputing the partition from its lineage, so a
//! persisted run is byte-identical to an unpersisted one under any budget
//! and any fault plan — the PR-2 determinism-under-retry contract extended
//! to the storage layer.
//!
//! Two storage levels mirror Spark's `MEMORY_ONLY` /` MEMORY_ONLY_SER`:
//! deserialized (cheap reads, estimated byte accounting) and serialized
//! through a caller-supplied [`CacheCodec`] (real byte accounting; the
//! rumble-core engine plugs in its item codec here).

use crate::context::Core;
use crate::error::Result;
use crate::events::{Event, EventBus};
use crate::executor::TaskContext;
use crate::rdd::util::ArcRangeIter;
use crate::rdd::{BoxIter, Preparable, RddOp};
use crate::Data;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};

/// Where and how a persisted RDD's partitions are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageLevel {
    /// Partitions are kept as live values (Spark's `MEMORY_ONLY`): no
    /// encode/decode cost on either side, byte accounting is a
    /// `size_of`-based estimate.
    MemoryDeserialized,
    /// Partitions are kept as encoded bytes (Spark's `MEMORY_ONLY_SER`):
    /// reads pay a decode, but the byte budget accounts for the real
    /// serialized size. Requires a [`CacheCodec`]; persisting at this level
    /// without one falls back to deserialized storage.
    MemorySerialized,
}

/// Encodes/decodes a partition for [`StorageLevel::MemorySerialized`].
///
/// sparklite cannot depend on any particular item model, so the element
/// codec is injected by the caller (rumble-core passes its tag+varint item
/// codec; DataFrames use a built-in row codec). Decoding returns an error
/// string rather than panicking: a failed decode is treated as a cache miss
/// and the partition is recomputed from lineage.
pub trait CacheCodec<T>: Send + Sync {
    fn encode(&self, items: &[T]) -> Vec<u8>;
    fn decode(&self, bytes: &[u8]) -> std::result::Result<Vec<T>, String>;
}

/// One cached partition. Type-erased so a single manager can hold
/// partitions of heterogeneous RDDs.
#[derive(Clone)]
enum Block {
    /// Deserialized storage: an `Arc<Vec<T>>` behind `dyn Any`.
    Items(Arc<dyn Any + Send + Sync>),
    /// Serialized storage: codec-encoded bytes.
    Bytes(Arc<Vec<u8>>),
}

struct Slot {
    block: Block,
    bytes: usize,
    /// Logical clock of the most recent touch; smallest = LRU victim.
    last_used: u64,
}

struct CacheInner {
    slots: HashMap<(u64, usize), Slot>,
    total_bytes: usize,
    tick: u64,
}

/// The driver-owned block manager: per-`(rdd_id, partition)` slots under a
/// byte budget with LRU eviction. All methods are executor-safe (internally
/// locked) — tasks populate and read slots directly.
pub struct CacheManager {
    inner: Mutex<CacheInner>,
    budget_bytes: usize,
    events: Arc<EventBus>,
    next_id: std::sync::atomic::AtomicU64,
}

impl CacheManager {
    pub(crate) fn new(budget_bytes: usize, events: Arc<EventBus>) -> Self {
        CacheManager {
            inner: Mutex::new(CacheInner { slots: HashMap::new(), total_bytes: 0, tick: 0 }),
            budget_bytes,
            events,
            next_id: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Hands out the unique id a `persist` call keys its slots under.
    /// Driver-side persist order is deterministic for a fixed program, so
    /// chaos decisions keyed on the id replay identically.
    pub(crate) fn next_rdd_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a cached partition, bumping its LRU clock. Emits the hit or
    /// miss as a [`Event::CacheRead`] (which derives the global counters).
    fn lookup(&self, id: u64, split: usize) -> Option<Block> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let block = inner.slots.get_mut(&(id, split)).map(|slot| {
            slot.last_used = tick;
            slot.block.clone()
        });
        self.events.emit(Event::CacheRead { rdd: id, split: split as u64, hit: block.is_some() });
        block
    }

    /// Records a miss without probing (used when an injected fault forces
    /// the fallback path).
    fn note_miss(&self, id: u64, split: usize) {
        self.events.emit(Event::CacheRead { rdd: id, split: split as u64, hit: false });
    }

    /// Stores a partition, then evicts least-recently-used slots until the
    /// cache fits the budget again. A block bigger than the whole budget is
    /// not stored at all (it could only evict everything and then itself).
    fn insert(&self, id: u64, split: usize, block: Block, bytes: usize) {
        if bytes > self.budget_bytes {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.slots.insert((id, split), Slot { block, bytes, last_used: tick }) {
            inner.total_bytes -= old.bytes;
        }
        inner.total_bytes += bytes;
        self.events.emit(Event::CachePut {
            rdd: id,
            split: split as u64,
            bytes: bytes as u64,
            total_bytes: inner.total_bytes as u64,
        });
        while inner.total_bytes > self.budget_bytes {
            let victim = inner
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k)
                .expect("over budget implies at least one slot");
            let evicted = inner.slots.remove(&victim).expect("victim exists");
            inner.total_bytes -= evicted.bytes;
            self.events.emit(Event::CacheEvict {
                rdd: victim.0,
                split: victim.1 as u64,
                bytes: evicted.bytes as u64,
                total_bytes: inner.total_bytes as u64,
            });
        }
    }

    /// Drops one slot (a poisoned or undecodable block).
    fn invalidate(&self, id: u64, split: usize) {
        let mut inner = self.lock();
        if let Some(slot) = inner.slots.remove(&(id, split)) {
            inner.total_bytes -= slot.bytes;
            self.events.emit(Event::CacheRelease {
                rdd: id,
                splits: 1,
                total_bytes: inner.total_bytes as u64,
            });
        }
    }

    /// Drops every slot of one persisted RDD. Later reads through the same
    /// handle recompute from lineage (and re-populate).
    pub(crate) fn unpersist(&self, id: u64) {
        let mut inner = self.lock();
        let keys: Vec<(u64, usize)> =
            inner.slots.keys().filter(|(rid, _)| *rid == id).copied().collect();
        let released = keys.len() as u64;
        for k in keys {
            let slot = inner.slots.remove(&k).expect("key listed above");
            inner.total_bytes -= slot.bytes;
        }
        self.events.emit(Event::CacheRelease {
            rdd: id,
            splits: released,
            total_bytes: inner.total_bytes as u64,
        });
    }

    /// Bytes currently cached (the `cached_bytes` gauge, read directly).
    pub fn cached_bytes(&self) -> usize {
        self.lock().total_bytes
    }

    /// Number of cached partitions.
    pub fn cached_partitions(&self) -> usize {
        self.lock().slots.len()
    }
}

/// The persist operator: a narrow wrapper that serves its parent's
/// partitions from the [`CacheManager`], populating lazily on first
/// computation.
pub(crate) struct CachedRdd<T: Data> {
    core: Arc<Core>,
    parent: Arc<dyn RddOp<T>>,
    id: u64,
    level: StorageLevel,
    codec: Option<Arc<dyn CacheCodec<T>>>,
}

impl<T: Data> CachedRdd<T> {
    pub(crate) fn new(
        core: Arc<Core>,
        parent: Arc<dyn RddOp<T>>,
        level: StorageLevel,
        codec: Option<Arc<dyn CacheCodec<T>>>,
    ) -> Self {
        let id = core.cache.next_rdd_id();
        // Serialized storage without a codec degrades to deserialized — the
        // documented fallback of `Rdd::persist`.
        let level = match (level, &codec) {
            (StorageLevel::MemorySerialized, None) => StorageLevel::MemoryDeserialized,
            (level, _) => level,
        };
        CachedRdd { core, parent, id, level, codec }
    }

    /// The cache key this operator's slots live under.
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Serves a cached block, or `None` if it cannot be decoded (treated as
    /// a miss upstream).
    fn serve(&self, block: Block) -> Option<BoxIter<T>> {
        match block {
            Block::Items(any) => {
                let data = Arc::downcast::<Vec<T>>(any).ok()?;
                let end = data.len();
                Some(Box::new(ArcRangeIter { data, i: 0, end }))
            }
            Block::Bytes(bytes) => {
                let codec = self.codec.as_ref()?;
                let items = codec.decode(&bytes).ok()?;
                Some(Box::new(items.into_iter()))
            }
        }
    }
}

impl<T: Data> Drop for CachedRdd<T> {
    /// Cached partitions are only reachable through this operator, so when
    /// the last handle drops they are freed rather than lingering until
    /// LRU eviction — per-run scaffolding caches (e.g. the order-by
    /// multi-pass cache in rumble-core) clean themselves up this way.
    fn drop(&mut self) {
        self.core.cache.unpersist(self.id);
    }
}

impl<T: Data> Preparable for CachedRdd<T> {
    fn prepare(&self) -> Result<()> {
        self.parent.prepare()
    }
}

impl<T: Data> RddOp<T> for CachedRdd<T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn compute(&self, split: usize, tc: &TaskContext) -> BoxIter<T> {
        let cache = &self.core.cache;
        // Chaos hook, wired like SimHdfs block reads: an injected cached-
        // read fault drops the slot and takes the lineage-recomputation
        // path. Unlike a storage fault it does not panic — falling back is
        // the recovery, so no retry budget is spent.
        if tc.injector.on_cached_read(self.id, split, tc) {
            cache.invalidate(self.id, split);
            cache.note_miss(self.id, split);
            tc.task_metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            match cache.lookup(self.id, split) {
                Some(block) => {
                    tc.task_metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                    match self.serve(block) {
                        Some(iter) => return iter,
                        None => cache.invalidate(self.id, split),
                    }
                }
                None => {
                    tc.task_metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Miss (cold, evicted, invalidated, or fault-injected): recompute
        // the partition from lineage and re-populate.
        let items: Vec<T> = self.parent.compute(split, tc).collect();
        match (self.level, &self.codec) {
            (StorageLevel::MemorySerialized, Some(codec)) => {
                let bytes = codec.encode(&items);
                let size = bytes.len();
                cache.insert(self.id, split, Block::Bytes(Arc::new(bytes)), size);
                Box::new(items.into_iter())
            }
            _ => {
                let data = Arc::new(items);
                let size = deserialized_size_estimate::<T>(data.len());
                cache.insert(
                    self.id,
                    split,
                    Block::Items(Arc::clone(&data) as Arc<dyn Any + Send + Sync>),
                    size,
                );
                let end = data.len();
                Box::new(ArcRangeIter { data, i: 0, end })
            }
        }
    }
}

/// Byte estimate for deserialized storage: shallow element size. Serialized
/// storage exists precisely because this undercounts pointer-heavy types.
fn deserialized_size_estimate<T>(len: usize) -> usize {
    len * std::mem::size_of::<T>().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(budget: usize) -> (CacheManager, Arc<crate::executor::Metrics>) {
        let metrics = Arc::new(crate::executor::Metrics::default());
        let events = Arc::new(EventBus::new(Arc::clone(&metrics)));
        (CacheManager::new(budget, events), metrics)
    }

    fn items_block(v: Vec<i64>) -> (Block, usize) {
        let bytes = deserialized_size_estimate::<i64>(v.len());
        (Block::Items(Arc::new(v) as Arc<dyn Any + Send + Sync>), bytes)
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // Budget fits exactly three 8-byte blocks.
        let (m, metrics) = manager(24);
        for split in 0..3 {
            let (b, n) = items_block(vec![split as i64]);
            m.insert(7, split, b, n);
        }
        assert_eq!(m.cached_partitions(), 3);
        // Touch 0, then 2; slot 1 is now least recently used.
        assert!(m.lookup(7, 0).is_some());
        assert!(m.lookup(7, 2).is_some());
        let (b, n) = items_block(vec![3]);
        m.insert(7, 3, b, n);
        assert_eq!(m.cached_partitions(), 3);
        assert!(m.lookup(7, 1).is_none(), "LRU victim must be the untouched slot");
        assert!(m.lookup(7, 0).is_some());
        assert!(m.lookup(7, 2).is_some());
        assert!(m.lookup(7, 3).is_some());
        let snap = metrics.snapshot();
        assert_eq!(snap.cache_evictions, 1);
        assert_eq!(snap.cached_bytes, 24);
    }

    #[test]
    fn oversized_blocks_are_not_stored() {
        let (m, metrics) = manager(16);
        let (b, n) = items_block(vec![1, 2, 3]); // 24 bytes > budget
        m.insert(0, 0, b, n);
        assert_eq!(m.cached_partitions(), 0);
        assert_eq!(metrics.snapshot().cache_evictions, 0);
    }

    #[test]
    fn unpersist_clears_only_that_rdd() {
        let (m, _) = manager(1024);
        for id in [1u64, 2] {
            for split in 0..2 {
                let (b, n) = items_block(vec![0]);
                m.insert(id, split, b, n);
            }
        }
        m.unpersist(1);
        assert_eq!(m.cached_partitions(), 2);
        assert!(m.lookup(1, 0).is_none());
        assert!(m.lookup(2, 0).is_some());
        assert_eq!(m.cached_bytes(), 16);
    }

    #[test]
    fn reinsert_replaces_and_accounts_once() {
        let (m, _) = manager(1024);
        let (b, n) = items_block(vec![1, 2]);
        m.insert(0, 0, b, n);
        let (b, n) = items_block(vec![1, 2, 3]);
        m.insert(0, 0, b, n);
        assert_eq!(m.cached_partitions(), 1);
        assert_eq!(m.cached_bytes(), 24);
    }
}
