//! The driver: owns the executor pool, shuffle bookkeeping, storage and
//! metrics, and hands out RDDs and DataFrames.

use crate::cache::CacheManager;
use crate::conf::{DistMode, SparkliteConf};
use crate::dist::Cluster;
use crate::error::Result;
use crate::events::{self, Event, EventBus, EventCollector, EventListener, Timeline};
use crate::executor::{ExecutorPool, Metrics, MetricsSnapshot, TaskContext, TaskFn};
use crate::faults::FaultInjector;
use crate::rdd::{BoxIter, ParallelCollectionRdd, Rdd, RddOp, TextFileRdd};
use crate::storage::SimHdfs;
use crate::Data;
use std::sync::Arc;

/// Shared driver state. RDD operators hold an `Arc<Core>` so that lazily
/// prepared stages (shuffles, sorts) can schedule jobs themselves.
pub struct Core {
    pub(crate) conf: SparkliteConf,
    pub(crate) pool: ExecutorPool,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) hdfs: SimHdfs,
    pub(crate) injector: Arc<FaultInjector>,
    pub(crate) cache: CacheManager,
    pub(crate) events: Arc<EventBus>,
    pub(crate) collector: Option<Arc<EventCollector>>,
    /// The distribution layer's executor cluster; `None` in local threaded
    /// mode, which keeps that path byte-identical to pre-cluster releases.
    pub(crate) cluster: Option<Arc<Cluster>>,
}

impl Core {
    /// Runs one task per partition of `op`, mapping each partition's
    /// iterator through `f`, and returns the per-partition results in
    /// partition order. Prepares (materializes) shuffle dependencies first,
    /// driver-side — sparklite's equivalent of Spark's DAG-scheduler stages.
    #[allow(clippy::type_complexity)] // one shared callback signature, aliasing hides more than it helps
    pub(crate) fn run_partitions<T: Data, U: Send + 'static>(
        self: &Arc<Self>,
        op: &Arc<dyn RddOp<T>>,
        f: Arc<dyn Fn(BoxIter<T>, &TaskContext) -> U + Send + Sync>,
    ) -> Result<Vec<U>> {
        op.prepare()?;
        let splits: Vec<usize> = (0..op.num_partitions()).collect();
        self.run_partition_subset(op, f, &splits)
    }

    /// Runs tasks for an explicit subset of `op`'s partitions — without
    /// re-preparing dependencies — and returns results in `splits` order.
    /// This is the lineage-recovery entry point: when a shuffle loses map
    /// outputs, only the affected parent partitions are recomputed, and each
    /// task keeps its original partition index so seeded per-partition
    /// sampling stays deterministic.
    #[allow(clippy::type_complexity)] // shares run_partitions' callback signature
    pub(crate) fn run_partition_subset<T: Data, U: Send + 'static>(
        self: &Arc<Self>,
        op: &Arc<dyn RddOp<T>>,
        f: Arc<dyn Fn(BoxIter<T>, &TaskContext) -> U + Send + Sync>,
        splits: &[usize],
    ) -> Result<Vec<U>> {
        let stage = self.events.next_stage_id();
        self.events.emit(Event::StageSubmitted { stage, num_tasks: splits.len() as u64 });
        let tasks: Vec<(usize, Arc<TaskFn<U>>)> = splits
            .iter()
            .map(|&split| {
                let op = Arc::clone(op);
                let f = Arc::clone(&f);
                let task: Arc<TaskFn<U>> =
                    Arc::new(move |tc: &TaskContext| f(op.compute(split, tc), tc));
                (split, task)
            })
            .collect();
        let out = events::with_stage(stage, || self.pool.run_labeled(tasks));
        if self.events.verbose() {
            self.events.emit(Event::StageCompleted { stage, ok: out.is_ok() });
        }
        out
    }

    /// The executor cluster, when the context runs distributed.
    pub(crate) fn cluster(&self) -> Option<&Arc<Cluster>> {
        self.cluster.as_ref()
    }
}

/// The user-facing entry point, analogous to `SparkContext`.
///
/// Cloning is cheap (it is an `Arc`); all clones share the same executor
/// pool, simulated HDFS namespace, and metrics.
#[derive(Clone)]
pub struct SparkliteContext {
    core: Arc<Core>,
}

impl SparkliteContext {
    pub fn new(conf: SparkliteConf) -> Self {
        let metrics = Arc::new(Metrics::default());
        let events = Arc::new(EventBus::new(Arc::clone(&metrics)));
        let collector = if conf.collect_events {
            // Share the bus epoch so merged executor event timestamps land
            // on the same µs axis as locally collected ones.
            let c = Arc::new(EventCollector::with_epoch(conf.event_capacity, events.epoch()));
            events.register(Arc::clone(&c) as Arc<dyn EventListener>);
            Some(c)
        } else {
            None
        };
        let injector = Arc::new(FaultInjector::new(conf.faults.clone(), Arc::clone(&events)));
        let pool = ExecutorPool::new(conf.executors, Arc::clone(&events), Arc::clone(&injector));
        let hdfs = SimHdfs::new(conf.block_size, conf.faults.read_latency_us);
        let cache = CacheManager::new(conf.cache_budget_bytes, Arc::clone(&events));
        let cluster = match conf.dist.mode {
            DistMode::Off => None,
            _ => Some(
                Cluster::start(&conf.dist, Arc::clone(&events))
                    .expect("failed to start executor cluster"),
            ),
        };
        SparkliteContext {
            core: Arc::new(Core {
                conf,
                pool,
                metrics,
                hdfs,
                injector,
                cache,
                events,
                collector,
                cluster,
            }),
        }
    }

    /// A context with default configuration.
    pub fn default_local() -> Self {
        Self::new(SparkliteConf::default())
    }

    pub fn conf(&self) -> &SparkliteConf {
        &self.core.conf
    }

    /// The number of executor worker threads.
    pub fn executors(&self) -> usize {
        self.core.pool.size()
    }

    /// The simulated HDFS namespace attached to this context.
    pub fn hdfs(&self) -> &SimHdfs {
        &self.core.hdfs
    }

    /// A point-in-time copy of the engine counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.core.metrics.snapshot()
    }

    /// The partition cache backing `Rdd::persist`.
    pub fn cache(&self) -> &CacheManager {
        &self.core.cache
    }

    /// The scheduler event bus.
    pub fn event_bus(&self) -> &Arc<EventBus> {
        &self.core.events
    }

    /// Registers an additional scheduler-event listener. Note that this
    /// enables verbose (observational) event emission for the context's
    /// remaining lifetime.
    pub fn add_event_listener(&self, listener: Arc<dyn EventListener>) {
        self.core.events.register(listener);
    }

    /// The bounded event collector, when the context was built with
    /// [`SparkliteConf::collect_events`].
    pub fn event_collector(&self) -> Option<&Arc<EventCollector>> {
        self.core.collector.as_ref()
    }

    /// A [`Timeline`] over the events collected so far; `None` without a
    /// collector.
    pub fn timeline(&self) -> Option<Timeline> {
        self.core.collector.as_ref().map(|c| c.timeline())
    }

    #[allow(dead_code)] // exercised by in-crate tests and future callers
    pub(crate) fn core(&self) -> &Arc<Core> {
        &self.core
    }

    /// The executor cluster, when this context was configured with a
    /// [`DistMode`] other than `Off`.
    pub fn cluster(&self) -> Option<&Arc<Cluster>> {
        self.core.cluster.as_ref()
    }

    /// Gracefully stops the executor cluster (no-op in local mode).
    ///
    /// Heartbeats and block events arrive on supervisor threads, so a
    /// distributed run that wants an exact [`Timeline::reconcile`] must
    /// quiesce the cluster *before* snapshotting metrics — this is that
    /// barrier. Jobs run after shutdown fall back to driver-local shuffles.
    pub fn shutdown_cluster(&self) {
        if let Some(cluster) = &self.core.cluster {
            cluster.shutdown();
        }
    }

    /// Distributes a local collection over `num_partitions` slices
    /// (Spark's `parallelize`).
    pub fn parallelize<T: Data>(&self, data: Vec<T>, num_partitions: usize) -> Rdd<T> {
        let op = ParallelCollectionRdd::new(data, num_partitions.max(1));
        Rdd::new(Arc::clone(&self.core), Arc::new(op))
    }

    /// `parallelize` with the configured default parallelism.
    pub fn parallelize_default<T: Data>(&self, data: Vec<T>) -> Rdd<T> {
        let parts = self.core.conf.default_parallelism;
        self.parallelize(data, parts)
    }

    /// Opens a text file as an RDD of lines, one partition per storage
    /// block. Paths with `hdfs://`/`s3://` schemes resolve against the
    /// simulated HDFS; everything else reads the local filesystem.
    pub fn text_file(&self, path: &str) -> Result<Rdd<Arc<str>>> {
        let op = TextFileRdd::open(Arc::clone(&self.core), path)?;
        Ok(Rdd::new(Arc::clone(&self.core), Arc::new(op)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelize_collect_roundtrip() {
        let sc = SparkliteContext::new(SparkliteConf::default().with_executors(4));
        let data: Vec<i64> = (0..1000).collect();
        let rdd = sc.parallelize(data.clone(), 7);
        assert_eq!(rdd.num_partitions(), 7);
        assert_eq!(rdd.collect().unwrap(), data);
    }

    #[test]
    fn parallelize_fewer_elements_than_partitions() {
        let sc = SparkliteContext::default_local();
        let rdd = sc.parallelize(vec![1, 2], 8);
        assert_eq!(rdd.collect().unwrap(), vec![1, 2]);
        assert_eq!(rdd.count().unwrap(), 2);
    }

    #[test]
    fn text_file_partitions_by_block() {
        let sc = SparkliteContext::new(SparkliteConf::default().with_block_size(1024));
        let text: String = (0..500).map(|i| format!("row {i}\n")).collect();
        sc.hdfs().put_text("/d/t.txt", &text).unwrap();
        let rdd = sc.text_file("hdfs:///d/t.txt").unwrap();
        assert!(rdd.num_partitions() > 1);
        let lines = rdd.collect().unwrap();
        assert_eq!(lines.len(), 500);
        assert_eq!(lines[0].as_ref(), "row 0");
        assert_eq!(lines[499].as_ref(), "row 499");
    }

    #[test]
    fn missing_file_is_an_error() {
        let sc = SparkliteContext::default_local();
        assert!(sc.text_file("hdfs:///nope").is_err());
    }

    #[test]
    fn metrics_visible_from_driver() {
        let sc = SparkliteContext::default_local();
        sc.parallelize((0..10).collect::<Vec<i32>>(), 2).count().unwrap();
        let m = sc.metrics();
        assert_eq!(m.jobs, 1);
        assert_eq!(m.tasks, 2);
    }
}
