//! Structured scheduler events: the observability backbone.
//!
//! Spark attributes cost to jobs, stages and tasks through its
//! `SparkListener` bus and event log; this module is sparklite's equivalent.
//! Every scheduler-visible fact — job and stage boundaries, task attempts
//! with their per-task counters, shuffle writes and fetches, cache traffic,
//! injected chaos — is emitted as a typed [`Event`] on a shared
//! [`EventBus`]. The engine-wide [`Metrics`](crate::Metrics) counters are
//! *derived* from this stream by [`MetricsListener`]; they are no longer a
//! separate code path, so a per-stage breakdown and the global snapshot can
//! never disagree.
//!
//! Emission cost: events that feed the global counters are always emitted
//! (one uncontended `RwLock` read + a few relaxed atomic adds, comparable to
//! the direct counter increments they replace). Purely observational events
//! (`TaskStart`, `JobEnd`, `StageCompleted`, `ShuffleFetch`) are gated
//! behind [`EventBus::verbose`], a single relaxed atomic load that is false
//! until a collector or user listener registers — so the fault-free fast
//! path stays within noise (asserted A/B in `tests/events.rs`).
//!
//! Determinism: events carry **no timestamps**. For a fixed seed the event
//! *data* is reproducible; the bounded [`EventCollector`] stamps arrival
//! times (µs since its epoch) on the side, and only those stamps — plus
//! `busy_us` — vary run to run. [`Timeline`] turns a collected stream into
//! per-job summaries (task-time histograms, p50/p95/max skew, retry and
//! straggler attribution) and exports the JSONL event log and Chrome
//! `chrome://tracing` trace.

use crate::error::FailureCause;
use crate::executor::{bucket_of, Metrics, MetricsSnapshot, HIST_BUCKETS};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Per-task counter totals, snapshotted into [`Event::TaskEnd`] from the
/// task's scratch [`TaskMetrics`](crate::executor::TaskMetrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskCounters {
    pub input_records: u64,
    pub input_bytes: u64,
    pub shuffle_records: u64,
    pub shuffle_bytes: u64,
    pub output_records: u64,
    /// Persisted-partition reads this task served from cache / recomputed.
    /// Display-only: the global cache counters are derived from
    /// [`Event::CacheRead`], not from these.
    pub cache_hits: u64,
    pub cache_misses: u64,
}

impl TaskCounters {
    pub fn accumulate(&mut self, other: &TaskCounters) {
        self.input_records += other.input_records;
        self.input_bytes += other.input_bytes;
        self.shuffle_records += other.shuffle_records;
        self.shuffle_bytes += other.shuffle_bytes;
        self.output_records += other.output_records;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }
}

/// A typed scheduler event. Field conventions: `job` is the scheduler-wide
/// job id (one per task wave), `stage` the id handed out by the lineage
/// walker for RDD stage executions, `partition` the task's partition label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A task wave entered the scheduler. `stage` links the job to the RDD
    /// stage that submitted it, when one did (driver-side `run_partitions`);
    /// bare `pool.run` jobs (e.g. sort output passes) have `None`.
    JobStart {
        job: u64,
        stage: Option<u64>,
        num_tasks: u64,
    },
    JobEnd {
        job: u64,
        ok: bool,
    },
    StageSubmitted {
        stage: u64,
        num_tasks: u64,
    },
    StageCompleted {
        stage: u64,
        ok: bool,
    },
    TaskStart {
        job: u64,
        partition: u64,
        attempt: u32,
        speculative: bool,
        worker: Option<u64>,
    },
    TaskEnd {
        job: u64,
        partition: u64,
        attempt: u32,
        speculative: bool,
        /// Executor worker index, `None` for driver/inline execution.
        worker: Option<u64>,
        busy_us: u64,
        /// Submit→start queueing delay: how long the attempt waited in the
        /// pool channel before a worker picked it up (0 for inline runs).
        queue_us: u64,
        counters: TaskCounters,
        failure: Option<FailureCause>,
    },
    /// The driver re-launched a failed task within its retry budget.
    TaskResubmitted {
        job: u64,
        partition: u64,
        next_attempt: u32,
    },
    /// The driver launched a speculative copy of a straggling task.
    SpeculativeLaunch {
        job: u64,
        partition: u64,
        attempt: u32,
    },
    /// A speculative copy committed its slot before the original attempt.
    SpeculativeWin {
        job: u64,
        partition: u64,
    },
    /// Lineage recovery re-ran `lost` parent tasks of a shuffle.
    LineageRecovery {
        shuffle: u64,
        lost: u64,
    },
    ShuffleWrite {
        job: u64,
        partition: u64,
        records: u64,
        bytes: u64,
    },
    ShuffleFetch {
        job: u64,
        partition: u64,
        records: u64,
        bytes: u64,
    },
    CacheRead {
        rdd: u64,
        split: u64,
        hit: bool,
    },
    CachePut {
        rdd: u64,
        split: u64,
        bytes: u64,
        total_bytes: u64,
    },
    CacheEvict {
        rdd: u64,
        split: u64,
        bytes: u64,
        total_bytes: u64,
    },
    /// A persisted RDD (or one split) was dropped; `total_bytes` is the
    /// cache occupancy after release.
    CacheRelease {
        rdd: u64,
        splits: u64,
        total_bytes: u64,
    },
    /// The chaos layer injected a fault. `a`/`b` are the injector's hash
    /// keys for the kind (stage/partition, file-hash/block, …).
    ChaosInject {
        kind: &'static str,
        a: u64,
        b: u64,
        attempt: u32,
    },
    /// The logical-plan optimizer applied one named rewrite rule (and its
    /// property contract held). `rule` is the `RBLO` id; `stage` is the
    /// optimizer fixpoint pass during which it fired — not a scheduler
    /// stage id.
    OptimizerRuleFired {
        rule: &'static str,
        stage: u64,
    },
    /// An executor worker (process or in-process thread) completed the
    /// registration handshake with the driver's cluster control plane.
    ExecutorRegistered {
        worker: u64,
        pid: u64,
    },
    /// A heartbeat arrived from a live executor worker. `seq` is the
    /// worker's monotonically increasing beat number.
    ExecutorHeartbeat {
        worker: u64,
        seq: u64,
    },
    /// The driver declared an executor dead (connection loss, heartbeat
    /// deadline lapse, or a failed block fetch).
    ExecutorLost {
        worker: u64,
        reason: String,
    },
    /// One map task's output blocks landed in an executor's block store.
    /// Emitted *by the worker* that stored them and forwarded to the
    /// driver; `dur_us` is the worker-side store time.
    BlockPush {
        shuffle: u64,
        map_part: u64,
        blocks: u64,
        bytes: u64,
        worker: u64,
        dur_us: u64,
    },
    /// A reducer fetched one map-output block from an executor's block
    /// service. Emitted *by the serving worker*; `dur_us` is the
    /// worker-side decode+serve time.
    BlockFetch {
        shuffle: u64,
        map_part: u64,
        reduce_part: u64,
        bytes: u64,
        worker: u64,
        dur_us: u64,
    },
    /// Executor-side events are known to be missing from the stream: the
    /// worker died (or was killed) with `lost` events unaccounted for —
    /// gaps in its forwarded sequence plus drops its bounded buffer
    /// reported. `last_seq` is the last sequence number that did arrive.
    ExecutorEventsLost {
        worker: u64,
        last_seq: u64,
        lost: u64,
    },
    /// A columnar pipeline segment drained one partition: `fused_ops`
    /// operators executed as a single vectorized pass over `batches`
    /// [`ColumnBatch`](crate::dataframe::batch::ColumnBatch)es, emitting
    /// `rows` rows. `fused_ops >= 2` marks a genuinely fused (multi-operator)
    /// pipeline. Emitted once per partition per execution, at input
    /// exhaustion — a re-executed (retried) partition reports again, in
    /// lockstep with the task counters.
    ColumnarBatch {
        fused_ops: u64,
        batches: u64,
        rows: u64,
    },
    /// The vectorized GROUP BY kernel drained one partition: `rows_in` rows
    /// (post-filter, across `batches` batches) collapsed into `groups_out`
    /// distinct groups before the shuffle. The `rows_in / groups_out` ratio
    /// is the map-side pre-aggregation factor; like `ColumnarBatch`, the
    /// event fires once per partition per execution.
    AggBatch {
        batches: u64,
        rows_in: u64,
        groups_out: u64,
    },
}

impl Event {
    /// The event's type tag, as used in the JSONL `"ev"` field.
    pub fn name(&self) -> &'static str {
        match self {
            Event::JobStart { .. } => "JobStart",
            Event::JobEnd { .. } => "JobEnd",
            Event::StageSubmitted { .. } => "StageSubmitted",
            Event::StageCompleted { .. } => "StageCompleted",
            Event::TaskStart { .. } => "TaskStart",
            Event::TaskEnd { .. } => "TaskEnd",
            Event::TaskResubmitted { .. } => "TaskResubmitted",
            Event::SpeculativeLaunch { .. } => "SpeculativeLaunch",
            Event::SpeculativeWin { .. } => "SpeculativeWin",
            Event::LineageRecovery { .. } => "LineageRecovery",
            Event::ShuffleWrite { .. } => "ShuffleWrite",
            Event::ShuffleFetch { .. } => "ShuffleFetch",
            Event::CacheRead { .. } => "CacheRead",
            Event::CachePut { .. } => "CachePut",
            Event::CacheEvict { .. } => "CacheEvict",
            Event::CacheRelease { .. } => "CacheRelease",
            Event::ChaosInject { .. } => "ChaosInject",
            Event::OptimizerRuleFired { .. } => "OptimizerRuleFired",
            Event::ExecutorRegistered { .. } => "ExecutorRegistered",
            Event::ExecutorHeartbeat { .. } => "ExecutorHeartbeat",
            Event::ExecutorLost { .. } => "ExecutorLost",
            Event::BlockPush { .. } => "BlockPush",
            Event::BlockFetch { .. } => "BlockFetch",
            Event::ExecutorEventsLost { .. } => "ExecutorEventsLost",
            Event::ColumnarBatch { .. } => "ColumnarBatch",
            Event::AggBatch { .. } => "AggBatch",
        }
    }
}

/// A consumer of scheduler events. Listeners must be cheap and non-blocking:
/// they run on the emitting thread (workers included).
pub trait EventListener: Send + Sync {
    fn on_event(&self, event: &Event);

    /// An event forwarded from another process, carrying the arrival stamp
    /// the merge layer assigned (worker-side stamp plus the handshake clock
    /// offset). Counter-deriving listeners treat it exactly like a local
    /// event; timestamp-storing listeners override this to keep the given
    /// stamp instead of reading their own clock.
    fn on_remote_event(&self, at_us: u64, event: &Event) {
        let _ = at_us;
        self.on_event(event);
    }
}

thread_local! {
    /// The RDD stage whose `run_partition_subset` is currently driving the
    /// executor pool on this thread; links `JobStart` to its stage. Works
    /// for nested (inline) jobs too, because those run on the same thread.
    static CURRENT_STAGE: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Runs `f` with `stage` recorded as this thread's submitting stage.
pub(crate) fn with_stage<R>(stage: u64, f: impl FnOnce() -> R) -> R {
    CURRENT_STAGE.with(|s| {
        let prev = s.replace(Some(stage));
        let r = f();
        s.set(prev);
        r
    })
}

pub(crate) fn current_stage() -> Option<u64> {
    CURRENT_STAGE.with(|s| s.get())
}

/// The shared event bus. Always carries a [`MetricsListener`] (the global
/// counters are derived from the stream); additional listeners — the
/// bounded [`EventCollector`], user listeners — flip [`EventBus::verbose`]
/// so emit sites can skip building purely observational events when nobody
/// is watching.
pub struct EventBus {
    listeners: RwLock<Vec<Arc<dyn EventListener>>>,
    verbose: AtomicBool,
    next_job: AtomicU64,
    next_stage: AtomicU64,
    /// The context-wide time origin: the collector's arrival stamps, the
    /// cluster's heartbeat deadlines and the worker clock offsets are all
    /// measured against this one instant, so they compose into one timeline.
    epoch: Instant,
}

impl EventBus {
    /// A bus whose only listener derives the global `Metrics` counters.
    pub fn new(metrics: Arc<Metrics>) -> Self {
        EventBus {
            listeners: RwLock::new(vec![Arc::new(MetricsListener { metrics })]),
            verbose: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
            next_stage: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// The shared time origin (see the `epoch` field).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Registers a listener and enables verbose (observational) events.
    pub fn register(&self, listener: Arc<dyn EventListener>) {
        self.listeners.write().expect("listener lock").push(listener);
        self.verbose.store(true, Ordering::Relaxed);
    }

    /// Whether any listener beyond the metrics deriver is attached. Emit
    /// sites use this as the cheap enabled-check for events that feed no
    /// global counter.
    #[inline]
    pub fn verbose(&self) -> bool {
        self.verbose.load(Ordering::Relaxed)
    }

    pub fn emit(&self, event: Event) {
        for l in self.listeners.read().expect("listener lock").iter() {
            l.on_event(&event);
        }
    }

    /// Emits an event forwarded from an executor process, preserving the
    /// merge layer's arrival stamp (see
    /// [`EventListener::on_remote_event`]).
    pub fn emit_remote(&self, at_us: u64, event: &Event) {
        for l in self.listeners.read().expect("listener lock").iter() {
            l.on_remote_event(at_us, event);
        }
    }

    pub(crate) fn next_job_id(&self) -> u64 {
        self.next_job.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn next_stage_id(&self) -> u64 {
        self.next_stage.fetch_add(1, Ordering::Relaxed)
    }
}

/// Derives every global [`Metrics`] counter from the event stream. The
/// mapping is one-to-one with the increments the scheduler used to perform
/// directly, so all existing counter semantics (and tests) are preserved.
pub struct MetricsListener {
    metrics: Arc<Metrics>,
}

impl EventListener for MetricsListener {
    fn on_event(&self, event: &Event) {
        let m = &self.metrics;
        let add = |c: &AtomicU64, n: u64| {
            c.fetch_add(n, Ordering::Relaxed);
        };
        match event {
            Event::JobStart { num_tasks, .. } => {
                add(&m.jobs, 1);
                add(&m.tasks, *num_tasks);
            }
            Event::StageSubmitted { .. } => add(&m.stages, 1),
            Event::TaskEnd { busy_us, queue_us, counters, failure, .. } => {
                add(&m.task_busy_us, *busy_us);
                m.task_duration_hist.record(*busy_us);
                m.queue_wait_hist.record(*queue_us);
                add(&m.input_records, counters.input_records);
                add(&m.input_bytes, counters.input_bytes);
                add(&m.shuffle_records, counters.shuffle_records);
                add(&m.shuffle_bytes, counters.shuffle_bytes);
                add(&m.output_records, counters.output_records);
                if failure.is_some() {
                    add(&m.failed_tasks, 1);
                }
            }
            Event::TaskResubmitted { .. } => add(&m.retried_tasks, 1),
            Event::SpeculativeLaunch { .. } => add(&m.speculated_tasks, 1),
            Event::SpeculativeWin { .. } => add(&m.speculative_wins, 1),
            Event::LineageRecovery { lost, .. } => add(&m.recomputed_tasks, *lost),
            Event::ChaosInject { .. } => add(&m.injected_faults, 1),
            Event::OptimizerRuleFired { .. } => add(&m.optimizer_rule_fires, 1),
            Event::CacheRead { hit, .. } => {
                add(if *hit { &m.cache_hits } else { &m.cache_misses }, 1)
            }
            Event::CachePut { total_bytes, .. } | Event::CacheRelease { total_bytes, .. } => {
                m.cached_bytes.store(*total_bytes, Ordering::Relaxed)
            }
            Event::CacheEvict { total_bytes, .. } => {
                add(&m.cache_evictions, 1);
                m.cached_bytes.store(*total_bytes, Ordering::Relaxed);
            }
            Event::ExecutorRegistered { .. } => add(&m.executors_registered, 1),
            Event::ExecutorHeartbeat { .. } => add(&m.heartbeats, 1),
            Event::ExecutorLost { .. } => add(&m.executors_lost, 1),
            Event::BlockPush { blocks, bytes, .. } => {
                add(&m.blocks_pushed, *blocks);
                add(&m.block_bytes_pushed, *bytes);
            }
            Event::BlockFetch { bytes, dur_us, .. } => {
                add(&m.blocks_fetched, 1);
                add(&m.block_bytes_fetched, *bytes);
                m.block_fetch_hist.record(*dur_us);
            }
            Event::ExecutorEventsLost { lost, .. } => add(&m.events_lost, *lost),
            Event::ColumnarBatch { fused_ops, batches, rows } => {
                add(&m.columnar_batches, *batches);
                add(&m.columnar_rows, *rows);
                if *fused_ops >= 2 {
                    add(&m.fused_pipelines, 1);
                }
            }
            Event::AggBatch { rows_in, groups_out, .. } => {
                add(&m.agg_rows_in, *rows_in);
                add(&m.agg_groups_out, *groups_out);
            }
            // Observational only: the write side already landed in TaskEnd
            // counters; job/stage completion feeds no counter.
            Event::JobEnd { .. }
            | Event::StageCompleted { .. }
            | Event::TaskStart { .. }
            | Event::ShuffleWrite { .. }
            | Event::ShuffleFetch { .. } => {}
        }
    }
}

struct CollectorState {
    events: Vec<(u64, Event)>,
    dropped: u64,
}

/// A bounded in-memory event sink. Stamps each event with µs since the
/// collector's creation; once `capacity` events are held, further events
/// are counted in [`EventCollector::dropped`] instead of stored (the
/// derived metrics keep counting regardless — only the timeline truncates).
pub struct EventCollector {
    epoch: Instant,
    capacity: usize,
    state: Mutex<CollectorState>,
}

impl EventCollector {
    pub fn new(capacity: usize) -> Self {
        Self::with_epoch(capacity, Instant::now())
    }

    /// A collector stamping arrival times against a shared `epoch`; the
    /// context passes [`EventBus::epoch`] so local stamps and forwarded
    /// worker stamps land on one timeline.
    pub fn with_epoch(capacity: usize, epoch: Instant) -> Self {
        EventCollector {
            epoch,
            capacity: capacity.max(1),
            state: Mutex::new(CollectorState { events: Vec::new(), dropped: 0 }),
        }
    }

    /// All collected `(arrival µs, event)` pairs, in arrival order.
    pub fn events(&self) -> Vec<(u64, Event)> {
        self.state.lock().expect("collector lock").events.clone()
    }

    /// Events discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("collector lock").dropped
    }

    pub fn clear(&self) {
        let mut s = self.state.lock().expect("collector lock");
        s.events.clear();
        s.dropped = 0;
    }

    pub fn timeline(&self) -> Timeline {
        Timeline::from_events(self.events())
    }
}

impl EventCollector {
    fn store(&self, at_us: u64, event: &Event) {
        let mut s = self.state.lock().expect("collector lock");
        if s.events.len() >= self.capacity {
            s.dropped += 1;
        } else {
            s.events.push((at_us, event.clone()));
        }
    }
}

impl EventListener for EventCollector {
    fn on_event(&self, event: &Event) {
        self.store(self.epoch.elapsed().as_micros() as u64, event);
    }

    /// Forwarded executor events keep the stamp the merge layer assigned
    /// (the worker's clock mapped through the handshake offset) instead of
    /// this collector's arrival clock.
    fn on_remote_event(&self, at_us: u64, event: &Event) {
        self.store(at_us, event);
    }
}

/// Reassembles one executor worker's batched, sequence-numbered event
/// stream into emission order, on the driver's clock.
///
/// Workers number every event they emit with a per-worker sequence and ship
/// them in batches (piggybacked on heartbeats, plus eager flushes). Batches
/// can in principle arrive out of order or with gaps (a killed worker's
/// tail never arrives); the merge buffers out-of-order events and releases
/// contiguous runs — **sequence numbers win over timestamps**, which are
/// skewed worker clocks mapped through the handshake-measured offset and
/// recorded for rendering, never trusted for ordering.
pub struct ExecutorStreamMerge {
    /// Driver-epoch µs minus worker-epoch µs at the registration handshake.
    offset_us: i64,
    /// The next sequence number the contiguous prefix is waiting for.
    next_seq: u64,
    /// Out-of-order events buffered until their predecessors arrive.
    pending: BTreeMap<u64, (u64, Event)>,
    /// Highest sequence number observed so far (0 before any arrive).
    last_seq: u64,
    /// Cumulative events the worker itself reported dropping (its bounded
    /// forward buffer overflowed before a flush).
    dropped: u64,
    /// Events known lost at finalization: sequence gaps plus `dropped`.
    lost: u64,
}

impl ExecutorStreamMerge {
    pub fn new(offset_us: i64) -> Self {
        ExecutorStreamMerge {
            offset_us,
            next_seq: 0,
            pending: BTreeMap::new(),
            last_seq: 0,
            dropped: 0,
            lost: 0,
        }
    }

    /// The handshake-measured clock offset (driver µs − worker µs).
    pub fn offset_us(&self) -> i64 {
        self.offset_us
    }

    /// Highest sequence number that has arrived.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Events known lost (valid after [`ExecutorStreamMerge::flush`]).
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Ingests one batch: events numbered `first_seq..`, with `dropped` the
    /// worker's cumulative drop count. Returns the events that became
    /// contiguous with everything already released, in sequence order, with
    /// their stamps mapped onto the driver clock.
    pub fn push_batch(
        &mut self,
        first_seq: u64,
        dropped: u64,
        events: Vec<(u64, Event)>,
    ) -> Vec<(u64, Event)> {
        self.dropped = self.dropped.max(dropped);
        for (i, (at_worker_us, event)) in events.into_iter().enumerate() {
            let seq = first_seq + i as u64;
            if seq < self.next_seq {
                continue; // duplicate delivery of an already-released event
            }
            self.last_seq = self.last_seq.max(seq);
            let at_us = (at_worker_us as i64).saturating_add(self.offset_us).max(0) as u64;
            self.pending.insert(seq, (at_us, event));
        }
        let mut released = Vec::new();
        while let Some(entry) = self.pending.remove(&self.next_seq) {
            released.push(entry);
            self.next_seq += 1;
        }
        released
    }

    /// Finalizes the stream (worker death or shutdown): releases everything
    /// still buffered in sequence order, counting the gaps — plus the
    /// worker-reported drops — as lost events.
    pub fn flush(&mut self) -> Vec<(u64, Event)> {
        let mut released = Vec::new();
        let pending = std::mem::take(&mut self.pending);
        for (seq, entry) in pending {
            self.lost += seq.saturating_sub(self.next_seq);
            self.next_seq = seq + 1;
            released.push(entry);
        }
        // Fold the worker-reported drops in exactly once, even if the
        // stream is finalized twice (death racing shutdown).
        self.lost += std::mem::take(&mut self.dropped);
        released
    }
}

/// Aggregated view of one job (one task wave) in a collected timeline.
#[derive(Debug, Clone, Default)]
pub struct JobSummary {
    pub job: u64,
    /// The RDD stage that submitted this job, if any.
    pub stage: Option<u64>,
    pub num_tasks: u64,
    /// Task attempts that reported (completed or failed).
    pub attempts: u64,
    pub failed: u64,
    /// Attempts re-launched after retryable failures.
    pub resubmitted: u64,
    pub speculated: u64,
    pub speculative_wins: u64,
    pub ok: bool,
    /// Driver wall time from `JobStart` to `JobEnd` arrival.
    pub wall_us: u64,
    /// Per-attempt busy times, sorted ascending (the task-time histogram).
    pub busy_us: Vec<u64>,
    pub total_busy_us: u64,
    pub counters: TaskCounters,
}

impl JobSummary {
    fn percentile(&self, q: f64) -> u64 {
        if self.busy_us.is_empty() {
            return 0;
        }
        let idx = ((self.busy_us.len() - 1) as f64 * q).round() as usize;
        self.busy_us[idx.min(self.busy_us.len() - 1)]
    }

    pub fn p50_us(&self) -> u64 {
        self.percentile(0.50)
    }

    pub fn p95_us(&self) -> u64 {
        self.percentile(0.95)
    }

    pub fn p99_us(&self) -> u64 {
        self.percentile(0.99)
    }

    pub fn max_us(&self) -> u64 {
        self.busy_us.last().copied().unwrap_or(0)
    }

    /// Straggler skew: slowest attempt over median attempt (1.0 = uniform).
    pub fn skew(&self) -> f64 {
        let p50 = self.p50_us();
        if p50 == 0 {
            return 0.0;
        }
        self.max_us() as f64 / p50 as f64
    }
}

/// A queryable, exportable view over a collected event stream.
pub struct Timeline {
    events: Vec<(u64, Event)>,
    jobs: Vec<JobSummary>,
}

impl Timeline {
    pub fn from_events(events: Vec<(u64, Event)>) -> Self {
        let mut jobs: Vec<JobSummary> = Vec::new();
        let mut starts: std::collections::HashMap<u64, (usize, u64)> =
            std::collections::HashMap::new();
        for (at, ev) in &events {
            match ev {
                Event::JobStart { job, stage, num_tasks } => {
                    starts.insert(*job, (jobs.len(), *at));
                    jobs.push(JobSummary {
                        job: *job,
                        stage: *stage,
                        num_tasks: *num_tasks,
                        ..JobSummary::default()
                    });
                }
                Event::JobEnd { job, ok } => {
                    if let Some(&(i, started)) = starts.get(job) {
                        jobs[i].ok = *ok;
                        jobs[i].wall_us = at.saturating_sub(started);
                    }
                }
                Event::TaskEnd { job, busy_us, counters, failure, .. } => {
                    if let Some(&(i, _)) = starts.get(job) {
                        let j = &mut jobs[i];
                        j.attempts += 1;
                        j.busy_us.push(*busy_us);
                        j.total_busy_us += busy_us;
                        j.counters.accumulate(counters);
                        if failure.is_some() {
                            j.failed += 1;
                        }
                    }
                }
                Event::TaskResubmitted { job, .. } => {
                    if let Some(&(i, _)) = starts.get(job) {
                        jobs[i].resubmitted += 1;
                    }
                }
                Event::SpeculativeLaunch { job, .. } => {
                    if let Some(&(i, _)) = starts.get(job) {
                        jobs[i].speculated += 1;
                    }
                }
                Event::SpeculativeWin { job, .. } => {
                    if let Some(&(i, _)) = starts.get(job) {
                        jobs[i].speculative_wins += 1;
                    }
                }
                _ => {}
            }
        }
        for j in &mut jobs {
            j.busy_us.sort_unstable();
        }
        Timeline { events, jobs }
    }

    pub fn events(&self) -> &[(u64, Event)] {
        &self.events
    }

    pub fn jobs(&self) -> &[JobSummary] {
        &self.jobs
    }

    /// Counter totals summed over every task attempt in the timeline.
    pub fn totals(&self) -> TaskCounters {
        let mut t = TaskCounters::default();
        for j in &self.jobs {
            t.accumulate(&j.counters);
        }
        t
    }

    /// `(TaskStart, TaskEnd)` counts; equal when every started attempt also
    /// reported before collection stopped.
    pub fn task_event_counts(&self) -> (u64, u64) {
        let mut starts = 0;
        let mut ends = 0;
        for (_, ev) in &self.events {
            match ev {
                Event::TaskStart { .. } => starts += 1,
                Event::TaskEnd { .. } => ends += 1,
                _ => {}
            }
        }
        (starts, ends)
    }

    fn count(&self, name: &str) -> u64 {
        self.events.iter().filter(|(_, e)| e.name() == name).count() as u64
    }

    /// Checks that this timeline's aggregates equal a [`MetricsSnapshot`]
    /// taken after the run — they are derived from the same stream, so any
    /// difference means events were dropped or emitted outside collection.
    /// Returns the first discrepancy as an error string.
    pub fn reconcile(&self, snap: &MetricsSnapshot) -> Result<(), String> {
        let check = |what: &str, got: u64, want: u64| {
            if got == want {
                Ok(())
            } else {
                Err(format!("{what}: timeline has {got}, snapshot has {want}"))
            }
        };
        check("jobs", self.jobs.len() as u64, snap.jobs)?;
        check("stages", self.count("StageSubmitted"), snap.stages)?;
        check("tasks", self.jobs.iter().map(|j| j.num_tasks).sum(), snap.tasks)?;
        check("task_busy_us", self.jobs.iter().map(|j| j.total_busy_us).sum(), snap.task_busy_us)?;
        check("failed_tasks", self.jobs.iter().map(|j| j.failed).sum(), snap.failed_tasks)?;
        check("retried_tasks", self.jobs.iter().map(|j| j.resubmitted).sum(), snap.retried_tasks)?;
        check(
            "speculated_tasks",
            self.jobs.iter().map(|j| j.speculated).sum(),
            snap.speculated_tasks,
        )?;
        check(
            "speculative_wins",
            self.jobs.iter().map(|j| j.speculative_wins).sum(),
            snap.speculative_wins,
        )?;
        let recomputed = self
            .events
            .iter()
            .map(|(_, e)| if let Event::LineageRecovery { lost, .. } = e { *lost } else { 0 })
            .sum::<u64>();
        check("recomputed_tasks", recomputed, snap.recomputed_tasks)?;
        check("injected_faults", self.count("ChaosInject"), snap.injected_faults)?;
        check("optimizer_rule_fires", self.count("OptimizerRuleFired"), snap.optimizer_rule_fires)?;
        let totals = self.totals();
        check("input_records", totals.input_records, snap.input_records)?;
        check("input_bytes", totals.input_bytes, snap.input_bytes)?;
        check("shuffle_records", totals.shuffle_records, snap.shuffle_records)?;
        check("shuffle_bytes", totals.shuffle_bytes, snap.shuffle_bytes)?;
        check("output_records", totals.output_records, snap.output_records)?;
        let hits = self
            .events
            .iter()
            .filter(|(_, e)| matches!(e, Event::CacheRead { hit: true, .. }))
            .count() as u64;
        let misses = self
            .events
            .iter()
            .filter(|(_, e)| matches!(e, Event::CacheRead { hit: false, .. }))
            .count() as u64;
        check("cache_hits", hits, snap.cache_hits)?;
        check("cache_misses", misses, snap.cache_misses)?;
        check("cache_evictions", self.count("CacheEvict"), snap.cache_evictions)?;
        check("executors_registered", self.count("ExecutorRegistered"), snap.executors_registered)?;
        check("executors_lost", self.count("ExecutorLost"), snap.executors_lost)?;
        check("heartbeats", self.count("ExecutorHeartbeat"), snap.heartbeats)?;
        let (blocks_pushed, block_bytes_pushed) = self
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                Event::BlockPush { blocks, bytes, .. } => Some((*blocks, *bytes)),
                _ => None,
            })
            .fold((0u64, 0u64), |(b, by), (db, dby)| (b + db, by + dby));
        check("blocks_pushed", blocks_pushed, snap.blocks_pushed)?;
        check("block_bytes_pushed", block_bytes_pushed, snap.block_bytes_pushed)?;
        check("blocks_fetched", self.count("BlockFetch"), snap.blocks_fetched)?;
        let block_bytes_fetched = self
            .events
            .iter()
            .map(|(_, e)| if let Event::BlockFetch { bytes, .. } = e { *bytes } else { 0 })
            .sum::<u64>();
        check("block_bytes_fetched", block_bytes_fetched, snap.block_bytes_fetched)?;
        let events_lost = self
            .events
            .iter()
            .map(|(_, e)| if let Event::ExecutorEventsLost { lost, .. } = e { *lost } else { 0 })
            .sum::<u64>();
        check("events_lost", events_lost, snap.events_lost)?;
        // The latency histograms are derived from the same stream, so the
        // recomputed buckets must match the snapshot exactly, bucket by
        // bucket — including buckets filled by forwarded executor events.
        let mut task_hist = [0u64; HIST_BUCKETS];
        let mut queue_hist = [0u64; HIST_BUCKETS];
        let mut fetch_hist = [0u64; HIST_BUCKETS];
        for (_, e) in &self.events {
            match e {
                Event::TaskEnd { busy_us, queue_us, .. } => {
                    task_hist[bucket_of(*busy_us)] += 1;
                    queue_hist[bucket_of(*queue_us)] += 1;
                }
                Event::BlockFetch { dur_us, .. } => fetch_hist[bucket_of(*dur_us)] += 1,
                _ => {}
            }
        }
        for (what, got, want) in [
            ("task_duration_hist", task_hist, snap.task_duration_hist),
            ("queue_wait_hist", queue_hist, snap.queue_wait_hist),
            ("block_fetch_hist", fetch_hist, snap.block_fetch_hist),
        ] {
            if got != want {
                return Err(format!("{what}: timeline has {got:?}, snapshot has {want:?}"));
            }
        }
        let (columnar_batches, columnar_rows, fused_pipelines) = self
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                Event::ColumnarBatch { fused_ops, batches, rows } => {
                    Some((*batches, *rows, *fused_ops))
                }
                _ => None,
            })
            .fold((0u64, 0u64, 0u64), |(cb, cr, fp), (batches, rows, ops)| {
                (cb + batches, cr + rows, fp + (ops >= 2) as u64)
            });
        check("columnar_batches", columnar_batches, snap.columnar_batches)?;
        check("columnar_rows", columnar_rows, snap.columnar_rows)?;
        check("fused_pipelines", fused_pipelines, snap.fused_pipelines)?;
        let (agg_rows_in, agg_groups_out) = self
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                Event::AggBatch { rows_in, groups_out, .. } => Some((*rows_in, *groups_out)),
                _ => None,
            })
            .fold((0u64, 0u64), |(ri, go), (rows_in, groups_out)| (ri + rows_in, go + groups_out));
        check("agg_rows_in", agg_rows_in, snap.agg_rows_in)?;
        check("agg_groups_out", agg_groups_out, snap.agg_groups_out)?;
        let cached = self
            .events
            .iter()
            .rev()
            .find_map(|(_, e)| match e {
                Event::CachePut { total_bytes, .. }
                | Event::CacheEvict { total_bytes, .. }
                | Event::CacheRelease { total_bytes, .. } => Some(*total_bytes),
                _ => None,
            })
            .unwrap_or(0);
        check("cached_bytes", cached, snap.cached_bytes)?;
        Ok(())
    }

    /// One JSON object per line, in arrival order — the persistent event
    /// log format (schema-checked by the bench harness).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (at, ev) in &self.events {
            write_event_json(&mut out, *at, ev);
            out.push('\n');
        }
        out
    }

    /// Chrome `chrome://tracing` / Perfetto `trace_event` JSON. The driver
    /// is pid 0 — tid 0 the driver lane (job spans), tid `w+1` the executor
    /// pool thread lanes (task spans, `dur` from the matched
    /// `TaskStart`/`TaskEnd` pair). Each executor *worker* gets its own
    /// process lane at the synthetic pid `1000 + worker` (thread-mode
    /// workers share the driver's OS pid, so the real pid from registration
    /// is recorded in the `process_name` text instead) with `store`/`serve`
    /// thread lanes carrying block push and block serve slices. Every task
    /// slice carries its hierarchical span id `job/stage/partition/attempt`
    /// in `args.span`.
    pub fn to_chrome_trace(&self) -> String {
        use std::collections::HashMap;
        /// The trace pid of an executor worker's process lane.
        const WORKER_PID_BASE: u64 = 1000;
        let mut job_stage: HashMap<u64, Option<u64>> = HashMap::new();
        for (_, ev) in &self.events {
            if let Event::JobStart { job, stage, .. } = ev {
                job_stage.insert(*job, *stage);
            }
        }
        let stage_of = |job: u64| -> String {
            job_stage.get(&job).copied().flatten().map_or("-".to_string(), |s| s.to_string())
        };
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let push = |out: &mut String, s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(&s);
        };
        let mut max_tid = 0u64;
        let mut open_tasks: HashMap<(u64, u64, u32), u64> = HashMap::new();
        let mut open_jobs: HashMap<u64, u64> = HashMap::new();
        // Dist worker index → OS pid from its registration event (0 until
        // one arrives; block slices still get a lane either way).
        let mut worker_pids: BTreeMap<u64, u64> = BTreeMap::new();
        let mut slices: Vec<String> = Vec::new();
        for (at, ev) in &self.events {
            match ev {
                Event::TaskStart { job, partition, attempt, .. } => {
                    open_tasks.insert((*job, *partition, *attempt), *at);
                }
                Event::TaskEnd {
                    job, partition, attempt, speculative, worker, failure, ..
                } => {
                    let tid = worker.map_or(0, |w| w + 1);
                    max_tid = max_tid.max(tid);
                    let ts = open_tasks.remove(&(*job, *partition, *attempt)).unwrap_or(*at);
                    let dur = at.saturating_sub(ts).max(1);
                    let spec = if *speculative { " (spec)" } else { "" };
                    let status = if failure.is_some() { "failed" } else { "ok" };
                    let span = format!("{job}/{}/{partition}/{attempt}", stage_of(*job));
                    slices.push(format!(
                        "{{\"name\":\"job {job} p{partition} a{attempt}{spec}\",\"ph\":\"X\",\
                         \"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
                         \"args\":{{\"status\":\"{status}\",\"span\":\"{span}\"}}}}"
                    ));
                }
                Event::JobStart { job, .. } => {
                    open_jobs.insert(*job, *at);
                }
                Event::JobEnd { job, ok } => {
                    if let Some(ts) = open_jobs.remove(job) {
                        let dur = at.saturating_sub(ts).max(1);
                        let span = format!("{job}/{}", stage_of(*job));
                        slices.push(format!(
                            "{{\"name\":\"job {job}\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\
                             \"ts\":{ts},\"dur\":{dur},\
                             \"args\":{{\"ok\":{ok},\"span\":\"{span}\"}}}}"
                        ));
                    }
                }
                Event::ExecutorRegistered { worker, pid } => {
                    worker_pids.insert(*worker, *pid);
                }
                Event::BlockPush { shuffle, map_part, blocks, bytes, worker, dur_us } => {
                    worker_pids.entry(*worker).or_insert(0);
                    let pid = WORKER_PID_BASE + worker;
                    let ts = at.saturating_sub(*dur_us);
                    let dur = (*dur_us).max(1);
                    slices.push(format!(
                        "{{\"name\":\"store s{shuffle} m{map_part}\",\"ph\":\"X\",\
                         \"pid\":{pid},\"tid\":0,\"ts\":{ts},\"dur\":{dur},\
                         \"args\":{{\"blocks\":{blocks},\"bytes\":{bytes},\
                         \"span\":\"s{shuffle}/m{map_part}\"}}}}"
                    ));
                }
                Event::BlockFetch { shuffle, map_part, reduce_part, bytes, worker, dur_us } => {
                    worker_pids.entry(*worker).or_insert(0);
                    let pid = WORKER_PID_BASE + worker;
                    let ts = at.saturating_sub(*dur_us);
                    let dur = (*dur_us).max(1);
                    slices.push(format!(
                        "{{\"name\":\"serve s{shuffle} m{map_part} r{reduce_part}\",\"ph\":\"X\",\
                         \"pid\":{pid},\"tid\":1,\"ts\":{ts},\"dur\":{dur},\
                         \"args\":{{\"bytes\":{bytes},\
                         \"span\":\"s{shuffle}/m{map_part}/r{reduce_part}\"}}}}"
                    ));
                }
                _ => {}
            }
        }
        push(
            &mut out,
            "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"driver\"}}"
                .to_string(),
            &mut first,
        );
        for tid in 0..=max_tid {
            let name =
                if tid == 0 { "driver".to_string() } else { format!("sparklite-exec-{}", tid - 1) };
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ),
                &mut first,
            );
        }
        for (worker, os_pid) in &worker_pids {
            let pid = WORKER_PID_BASE + worker;
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"executor-{worker} (pid {os_pid})\"}}}}"
                ),
                &mut first,
            );
            for (tid, name) in [(0, "store"), (1, "serve")] {
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                         \"args\":{{\"name\":\"{name}\"}}}}"
                    ),
                    &mut first,
                );
            }
        }
        for s in slices {
            push(&mut out, s, &mut first);
        }
        out.push_str("\n]}\n");
        out
    }

    /// A human-readable per-job breakdown table (used by the harness and
    /// EXPERIMENTS.md).
    pub fn render_job_table(&self) -> String {
        let mut out = String::from(
            "job   stage  tasks  attempts  failed  retried  spec  busy_ms   p50_ms  p95_ms  p99_ms  max_ms  skew\n",
        );
        for j in &self.jobs {
            let stage = j.stage.map_or("-".to_string(), |s| s.to_string());
            out.push_str(&format!(
                "{:<5} {:<6} {:<6} {:<9} {:<7} {:<8} {:<5} {:<9.2} {:<7.2} {:<7.2} {:<7.2} {:<7.2} {:.2}\n",
                j.job,
                stage,
                j.num_tasks,
                j.attempts,
                j.failed,
                j.resubmitted,
                j.speculated,
                j.total_busy_us as f64 / 1e3,
                j.p50_us() as f64 / 1e3,
                j.p95_us() as f64 / 1e3,
                j.p99_us() as f64 / 1e3,
                j.max_us() as f64 / 1e3,
                j.skew(),
            ));
        }
        out
    }

    /// A per-worker activity table (the shell's `:top` view): one row per
    /// executor worker lane seen in the timeline, plus a `driver` row for
    /// task attempts that ran in-process.
    pub fn render_top(&self) -> String {
        #[derive(Default)]
        struct Lane {
            pid: u64,
            tasks: u64,
            busy_us: u64,
            heartbeats: u64,
            pushes: u64,
            push_bytes: u64,
            serves: u64,
            serve_bytes: u64,
            lost: u64,
        }
        let mut driver = Lane { pid: std::process::id() as u64, ..Default::default() };
        let mut lanes: BTreeMap<u64, Lane> = BTreeMap::new();
        for (_, ev) in &self.events {
            match ev {
                Event::TaskEnd { worker, busy_us, .. } => {
                    // `worker` on a task is the executor *pool thread*, not a
                    // dist worker; every task attempt runs on the driver.
                    let _ = worker;
                    driver.tasks += 1;
                    driver.busy_us += busy_us;
                }
                Event::ExecutorRegistered { worker, pid } => {
                    lanes.entry(*worker).or_default().pid = *pid;
                }
                Event::ExecutorHeartbeat { worker, .. } => {
                    lanes.entry(*worker).or_default().heartbeats += 1;
                }
                Event::BlockPush { worker, blocks, bytes, .. } => {
                    let l = lanes.entry(*worker).or_default();
                    l.pushes += blocks;
                    l.push_bytes += bytes;
                }
                Event::BlockFetch { worker, bytes, .. } => {
                    let l = lanes.entry(*worker).or_default();
                    l.serves += 1;
                    l.serve_bytes += bytes;
                }
                Event::ExecutorEventsLost { worker, lost, .. } => {
                    lanes.entry(*worker).or_default().lost += lost;
                }
                _ => {}
            }
        }
        let mut out = String::from(
            "lane        pid     tasks  busy_ms   beats  pushes  push_kb   serves  serve_kb  lost\n",
        );
        let row = |out: &mut String, name: &str, l: &Lane| {
            out.push_str(&format!(
                "{:<11} {:<7} {:<6} {:<9.2} {:<6} {:<7} {:<9.1} {:<7} {:<9.1} {}\n",
                name,
                l.pid,
                l.tasks,
                l.busy_us as f64 / 1e3,
                l.heartbeats,
                l.pushes,
                l.push_bytes as f64 / 1e3,
                l.serves,
                l.serve_bytes as f64 / 1e3,
                l.lost,
            ));
        };
        row(&mut out, "driver", &driver);
        for (worker, lane) in &lanes {
            row(&mut out, &format!("executor-{worker}"), lane);
        }
        out
    }
}

fn esc(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn write_event_json(out: &mut String, at_us: u64, ev: &Event) {
    out.push_str(&format!("{{\"ev\":\"{}\",\"at_us\":{at_us}", ev.name()));
    match ev {
        Event::JobStart { job, stage, num_tasks } => {
            out.push_str(&format!(",\"job\":{job}"));
            match stage {
                Some(s) => out.push_str(&format!(",\"stage\":{s}")),
                None => out.push_str(",\"stage\":null"),
            }
            out.push_str(&format!(",\"num_tasks\":{num_tasks}"));
        }
        Event::JobEnd { job, ok } => out.push_str(&format!(",\"job\":{job},\"ok\":{ok}")),
        Event::StageSubmitted { stage, num_tasks } => {
            out.push_str(&format!(",\"stage\":{stage},\"num_tasks\":{num_tasks}"))
        }
        Event::StageCompleted { stage, ok } => {
            out.push_str(&format!(",\"stage\":{stage},\"ok\":{ok}"))
        }
        Event::TaskStart { job, partition, attempt, speculative, worker } => {
            out.push_str(&format!(
                ",\"job\":{job},\"partition\":{partition},\"attempt\":{attempt},\
                 \"speculative\":{speculative}"
            ));
            match worker {
                Some(w) => out.push_str(&format!(",\"worker\":{w}")),
                None => out.push_str(",\"worker\":null"),
            }
        }
        Event::TaskEnd {
            job,
            partition,
            attempt,
            speculative,
            worker,
            busy_us,
            queue_us,
            counters,
            failure,
        } => {
            out.push_str(&format!(
                ",\"job\":{job},\"partition\":{partition},\"attempt\":{attempt},\
                 \"speculative\":{speculative}"
            ));
            match worker {
                Some(w) => out.push_str(&format!(",\"worker\":{w}")),
                None => out.push_str(",\"worker\":null"),
            }
            out.push_str(&format!(
                ",\"busy_us\":{busy_us},\"queue_us\":{queue_us},\
                 \"input_records\":{},\"input_bytes\":{},\
                 \"shuffle_records\":{},\"shuffle_bytes\":{},\"output_records\":{},\
                 \"cache_hits\":{},\"cache_misses\":{}",
                counters.input_records,
                counters.input_bytes,
                counters.shuffle_records,
                counters.shuffle_bytes,
                counters.output_records,
                counters.cache_hits,
                counters.cache_misses,
            ));
            match failure {
                Some(f) => {
                    out.push_str(&format!(
                        ",\"failure\":{{\"kind\":\"{:?}\",\"message\":\"",
                        f.kind
                    ));
                    esc(out, &f.message);
                    out.push_str("\"}");
                }
                None => out.push_str(",\"failure\":null"),
            }
        }
        Event::TaskResubmitted { job, partition, next_attempt } => out.push_str(&format!(
            ",\"job\":{job},\"partition\":{partition},\"next_attempt\":{next_attempt}"
        )),
        Event::SpeculativeLaunch { job, partition, attempt } => {
            out.push_str(&format!(",\"job\":{job},\"partition\":{partition},\"attempt\":{attempt}"))
        }
        Event::SpeculativeWin { job, partition } => {
            out.push_str(&format!(",\"job\":{job},\"partition\":{partition}"))
        }
        Event::LineageRecovery { shuffle, lost } => {
            out.push_str(&format!(",\"shuffle\":{shuffle},\"lost\":{lost}"))
        }
        Event::ShuffleWrite { job, partition, records, bytes }
        | Event::ShuffleFetch { job, partition, records, bytes } => out.push_str(&format!(
            ",\"job\":{job},\"partition\":{partition},\"records\":{records},\"bytes\":{bytes}"
        )),
        Event::CacheRead { rdd, split, hit } => {
            out.push_str(&format!(",\"rdd\":{rdd},\"split\":{split},\"hit\":{hit}"))
        }
        Event::CachePut { rdd, split, bytes, total_bytes }
        | Event::CacheEvict { rdd, split, bytes, total_bytes } => out.push_str(&format!(
            ",\"rdd\":{rdd},\"split\":{split},\"bytes\":{bytes},\"total_bytes\":{total_bytes}"
        )),
        Event::CacheRelease { rdd, splits, total_bytes } => out
            .push_str(&format!(",\"rdd\":{rdd},\"splits\":{splits},\"total_bytes\":{total_bytes}")),
        Event::ChaosInject { kind, a, b, attempt } => {
            out.push_str(&format!(",\"kind\":\"{kind}\",\"a\":{a},\"b\":{b},\"attempt\":{attempt}"))
        }
        Event::OptimizerRuleFired { rule, stage } => {
            out.push_str(&format!(",\"rule\":\"{rule}\",\"stage\":{stage}"))
        }
        Event::ExecutorRegistered { worker, pid } => {
            out.push_str(&format!(",\"worker\":{worker},\"pid\":{pid}"))
        }
        Event::ExecutorHeartbeat { worker, seq } => {
            out.push_str(&format!(",\"worker\":{worker},\"seq\":{seq}"))
        }
        Event::ExecutorLost { worker, reason } => {
            out.push_str(&format!(",\"worker\":{worker},\"reason\":\""));
            esc(out, reason);
            out.push('"');
        }
        Event::BlockPush { shuffle, map_part, blocks, bytes, worker, dur_us } => {
            out.push_str(&format!(
                ",\"shuffle\":{shuffle},\"map_part\":{map_part},\"blocks\":{blocks},\
                 \"bytes\":{bytes},\"worker\":{worker},\"dur_us\":{dur_us}"
            ))
        }
        Event::BlockFetch { shuffle, map_part, reduce_part, bytes, worker, dur_us } => out
            .push_str(&format!(
                ",\"shuffle\":{shuffle},\"map_part\":{map_part},\"reduce_part\":{reduce_part},\
                 \"bytes\":{bytes},\"worker\":{worker},\"dur_us\":{dur_us}"
            )),
        Event::ExecutorEventsLost { worker, last_seq, lost } => {
            out.push_str(&format!(",\"worker\":{worker},\"last_seq\":{last_seq},\"lost\":{lost}"))
        }
        Event::ColumnarBatch { fused_ops, batches, rows } => out
            .push_str(&format!(",\"fused_ops\":{fused_ops},\"batches\":{batches},\"rows\":{rows}")),
        Event::AggBatch { batches, rows_in, groups_out } => out.push_str(&format!(
            ",\"batches\":{batches},\"rows_in\":{rows_in},\"groups_out\":{groups_out}"
        )),
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_listener_derives_counters() {
        let metrics = Arc::new(Metrics::default());
        let bus = EventBus::new(Arc::clone(&metrics));
        bus.emit(Event::JobStart { job: 0, stage: None, num_tasks: 3 });
        bus.emit(Event::StageSubmitted { stage: 0, num_tasks: 3 });
        bus.emit(Event::TaskEnd {
            job: 0,
            partition: 0,
            attempt: 0,
            speculative: false,
            worker: Some(0),
            busy_us: 42,
            queue_us: 9,
            counters: TaskCounters { input_records: 7, ..TaskCounters::default() },
            failure: None,
        });
        bus.emit(Event::CacheRead { rdd: 1, split: 0, hit: true });
        bus.emit(Event::CachePut { rdd: 1, split: 0, bytes: 10, total_bytes: 10 });
        let snap = metrics.snapshot();
        assert_eq!(snap.jobs, 1);
        assert_eq!(snap.stages, 1);
        assert_eq!(snap.tasks, 3);
        assert_eq!(snap.task_busy_us, 42);
        assert_eq!(snap.input_records, 7);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cached_bytes, 10);
    }

    #[test]
    fn collector_is_bounded() {
        let c = EventCollector::new(2);
        for i in 0..5 {
            c.on_event(&Event::JobEnd { job: i, ok: true });
        }
        assert_eq!(c.events().len(), 2);
        assert_eq!(c.dropped(), 3);
    }

    #[test]
    fn verbose_flips_on_registration() {
        let bus = EventBus::new(Arc::new(Metrics::default()));
        assert!(!bus.verbose());
        bus.register(Arc::new(EventCollector::new(16)));
        assert!(bus.verbose());
    }

    #[test]
    fn jsonl_and_trace_are_well_formed() {
        let c = EventCollector::new(64);
        c.on_event(&Event::JobStart { job: 0, stage: Some(1), num_tasks: 1 });
        c.on_event(&Event::TaskStart {
            job: 0,
            partition: 0,
            attempt: 0,
            speculative: false,
            worker: Some(2),
        });
        c.on_event(&Event::TaskEnd {
            job: 0,
            partition: 0,
            attempt: 0,
            speculative: false,
            worker: Some(2),
            busy_us: 5,
            queue_us: 1,
            counters: TaskCounters::default(),
            failure: None,
        });
        c.on_event(&Event::BlockPush {
            shuffle: 0,
            map_part: 0,
            blocks: 2,
            bytes: 64,
            worker: 1,
            dur_us: 3,
        });
        c.on_event(&Event::JobEnd { job: 0, ok: true });
        let tl = c.timeline();
        let jsonl = tl.to_jsonl();
        assert_eq!(jsonl.lines().count(), 5);
        assert!(jsonl.lines().all(|l| l.starts_with("{\"ev\":\"") && l.ends_with('}')));
        let trace = tl.to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("sparklite-exec-2"));
        assert!(trace.contains("\"ph\":\"X\""));
        // The task slice carries its span id, the worker its process lane.
        assert!(trace.contains("\"span\":\"0/1/0/0\""));
        assert!(trace.contains("\"name\":\"executor-1 (pid 0)\""));
        assert!(trace.contains("\"pid\":1001"));
        let (starts, ends) = tl.task_event_counts();
        assert_eq!(starts, ends);
        let top = tl.render_top();
        assert!(top.contains("driver"));
        assert!(top.contains("executor-1"));
    }

    fn beat(worker: u64, seq: u64) -> Event {
        Event::ExecutorHeartbeat { worker, seq }
    }

    #[test]
    fn stream_merge_releases_in_seq_order_and_applies_offset() {
        let mut m = ExecutorStreamMerge::new(500);
        // Batch arrives with a gap: seq 0 and 2, seq 1 missing.
        let got = m.push_batch(0, 0, vec![(100, beat(0, 0))]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 600); // worker clock + offset
        let got = m.push_batch(2, 0, vec![(300, beat(0, 2))]);
        assert!(got.is_empty(), "seq 2 must wait for seq 1");
        let got = m.push_batch(1, 0, vec![(200, beat(0, 1))]);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 700);
        assert_eq!(got[1].0, 800);
        assert_eq!(m.last_seq(), 2);
        assert_eq!(m.lost(), 0);
    }

    #[test]
    fn stream_merge_counts_gaps_and_drops_as_lost() {
        let mut m = ExecutorStreamMerge::new(0);
        m.push_batch(0, 0, vec![(1, beat(0, 0))]);
        // The worker ring dropped 3 events, and seq 1..=4 never arrive.
        m.push_batch(5, 3, vec![(6, beat(0, 5))]);
        let released = m.flush();
        assert_eq!(released.len(), 1);
        assert_eq!(m.lost(), 4 + 3);
        // Finalizing twice (death racing shutdown) must not double-count.
        assert!(m.flush().is_empty());
        assert_eq!(m.lost(), 7);
    }

    #[test]
    fn stream_merge_ignores_duplicate_batches() {
        let mut m = ExecutorStreamMerge::new(0);
        assert_eq!(m.push_batch(0, 0, vec![(1, beat(0, 0)), (2, beat(0, 1))]).len(), 2);
        // A re-send of an already-released range is a no-op.
        assert!(m.push_batch(0, 0, vec![(1, beat(0, 0)), (2, beat(0, 1))]).is_empty());
        assert_eq!(m.last_seq(), 1);
        assert_eq!(m.lost() + m.flush().len() as u64, 0);
    }

    #[test]
    fn stream_merge_negative_offset_clamps_at_zero() {
        let mut m = ExecutorStreamMerge::new(-1000);
        let got = m.push_batch(0, 0, vec![(400, beat(0, 0))]);
        assert_eq!(got[0].0, 0);
    }
}
