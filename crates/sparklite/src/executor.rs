//! The executor pool, task machinery, and the recovery scheduler.
//!
//! Each worker thread models one executor core of the paper's clusters; the
//! scale-out experiments sweep the pool size. Tasks are closures scheduled
//! one per partition. The driver loop in [`ExecutorPool::run_labeled`] is
//! sparklite's TaskScheduler: it classifies every failed attempt
//! ([`FailureCause`]), retries injected/transient failures within the
//! configured attempt budget, fails fast on deterministic application
//! errors, and — when speculation is enabled — re-launches straggling tasks
//! and commits whichever attempt finishes first (first-writer-wins), the
//! same contract a Spark driver gets from its cluster.

use crate::error::{FailureCause, FailureKind, Result, SparkliteError};
use crate::events::{current_stage, Event, EventBus, TaskCounters};
use crate::faults::{AppAbort, FaultInjector, InjectedFault};
use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A re-executable task body. Tasks must be `Fn` (not `FnOnce`) so the
/// scheduler can retry a failed attempt or launch a speculative copy.
pub(crate) type TaskFn<R> = dyn Fn(&TaskContext) -> R + Send + Sync;

/// How often the driver wakes to look for straggling tasks when speculation
/// is enabled.
const SPECULATION_TICK: Duration = Duration::from_millis(5);
/// Never speculate a task younger than this, whatever the median says.
const SPECULATION_MIN_AGE: Duration = Duration::from_millis(10);

thread_local! {
    /// Set while a worker thread executes a task; used to run nested jobs
    /// inline (Spark jobs do not nest — see paper §5.6).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Depth of task bodies currently unwinding-protected on this thread;
    /// the process panic hook stays quiet while it is non-zero, because the
    /// scheduler catches and classifies those panics itself.
    static TASK_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// This executor thread's worker index; `None` on the driver (events
    /// attribute inline/nested execution to the driver lane).
    static WORKER_ID: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" stderr noise for panics raised *inside* task bodies —
/// application aborts and injected faults are normal control flow for the
/// recovery layer. Panics anywhere else keep the previous hook's behaviour.
fn install_task_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if TASK_DEPTH.with(|d| d.get()) == 0 {
                previous(info);
            }
        }));
    });
}

/// Number of fixed log2 latency buckets in a [`Histogram`].
pub const HIST_BUCKETS: usize = 24;

/// The bucket index for a microsecond latency: bucket `i` covers
/// `[2^i, 2^(i+1))` µs, bucket 0 also absorbs 0, and the last bucket is
/// open-ended (≥ ~8.4 s). Fixed buckets keep merging across processes a
/// plain element-wise add.
#[inline]
pub fn bucket_of(us: u64) -> usize {
    ((63 - (us | 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// A fixed-bucket log2 latency histogram with lock-free recording; the
/// engine keeps one per tracked latency (task duration, block fetch,
/// queue wait) inside [`Metrics`].
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    #[inline]
    pub fn record(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }
}

/// The `q`-quantile (0.0–1.0) of a bucketed histogram, reported as the
/// lower edge of the bucket holding that rank (0 for an empty histogram).
pub fn histogram_percentile(buckets: &[u64; HIST_BUCKETS], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return if i == 0 { 0 } else { 1u64 << i };
        }
    }
    1u64 << (HIST_BUCKETS - 1)
}

/// Engine-wide counters, derived from the scheduler's event stream by
/// [`MetricsListener`](crate::events::MetricsListener) — every value here
/// also lands on a per-stage/per-task record in the event log.
///
/// Every field except [`Metrics::cached_bytes`] is a monotonically
/// increasing counter; `cached_bytes` is a **gauge** that moves both ways.
/// Read a consistent view with [`Metrics::snapshot`].
#[derive(Default)]
pub struct Metrics {
    pub jobs: AtomicU64,
    pub stages: AtomicU64,
    pub tasks: AtomicU64,
    pub input_records: AtomicU64,
    pub input_bytes: AtomicU64,
    pub shuffle_records: AtomicU64,
    pub shuffle_bytes: AtomicU64,
    pub output_records: AtomicU64,
    /// Total wall time spent inside tasks, in microseconds — the
    /// "aggregated runtime over the cluster" of the paper's Fig. 14.
    pub task_busy_us: AtomicU64,
    /// Task attempts that ended in a failure (any [`FailureKind`]).
    pub failed_tasks: AtomicU64,
    /// Attempts re-launched after a retryable failure.
    pub retried_tasks: AtomicU64,
    /// Parent-stage tasks re-run to regenerate lost shuffle outputs
    /// (lineage-based recovery).
    pub recomputed_tasks: AtomicU64,
    /// Speculative copies launched for straggling tasks.
    pub speculated_tasks: AtomicU64,
    /// Speculative copies that finished before the original attempt.
    pub speculative_wins: AtomicU64,
    /// Faults injected by the chaos plan (kills, lost outputs, storage
    /// faults, straggler slowdowns, cached-read faults).
    pub injected_faults: AtomicU64,
    /// Optimizer rewrite-rule firings whose property contract held (one
    /// per applied rule per plan compilation).
    pub optimizer_rule_fires: AtomicU64,
    /// Persisted-partition reads served from the cache.
    pub cache_hits: AtomicU64,
    /// Persisted-partition reads that fell back to lineage recomputation
    /// (cold, evicted, or fault-injected).
    pub cache_misses: AtomicU64,
    /// Partitions evicted from the cache under byte-budget pressure.
    pub cache_evictions: AtomicU64,
    /// Executor workers that completed the registration handshake.
    pub executors_registered: AtomicU64,
    /// Executor workers declared dead (connection loss, heartbeat deadline,
    /// or failed block fetch).
    pub executors_lost: AtomicU64,
    /// Heartbeats received from live executors.
    pub heartbeats: AtomicU64,
    /// Shuffle blocks pushed to executor block stores.
    pub blocks_pushed: AtomicU64,
    /// Total bytes of shuffle blocks pushed to executors.
    pub block_bytes_pushed: AtomicU64,
    /// Shuffle blocks fetched back from executor block services.
    pub blocks_fetched: AtomicU64,
    /// Total bytes of shuffle blocks fetched from executors.
    pub block_bytes_fetched: AtomicU64,
    /// ColumnBatches processed by vectorized DataFrame pipeline segments.
    pub columnar_batches: AtomicU64,
    /// Rows emitted by vectorized DataFrame pipeline segments; paired with
    /// `columnar_batches`, the mean batch occupancy the adaptive
    /// row-vs-batch heuristic reads.
    pub columnar_rows: AtomicU64,
    /// Per-partition executions of fused (multi-operator, single-pass)
    /// columnar pipeline segments.
    pub fused_pipelines: AtomicU64,
    /// Rows folded into the vectorized GROUP BY kernel (post-filter).
    pub agg_rows_in: AtomicU64,
    /// Distinct groups the vectorized GROUP BY kernel emitted to the
    /// shuffle; `agg_rows_in / agg_groups_out` is the map-side
    /// pre-aggregation factor.
    pub agg_groups_out: AtomicU64,
    /// Executor-side events known to have been lost: gaps in a dead
    /// worker's forwarded sequence plus drops its bounded buffer reported.
    pub events_lost: AtomicU64,
    /// Bytes currently held by the partition cache. Unlike every counter
    /// above this is a **gauge**: it moves both ways as blocks are stored,
    /// evicted and unpersisted.
    pub cached_bytes: AtomicU64,
    /// Task attempt wall time, log2 µs buckets (from `TaskEnd.busy_us`).
    pub task_duration_hist: Histogram,
    /// Block-service serve latency (from `BlockFetch.dur_us`).
    pub block_fetch_hist: Histogram,
    /// Submit→start queueing delay (from `TaskEnd.queue_us`).
    pub queue_wait_hist: Histogram,
}

/// A point-in-time copy of [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub jobs: u64,
    pub stages: u64,
    pub tasks: u64,
    pub input_records: u64,
    pub input_bytes: u64,
    pub shuffle_records: u64,
    pub shuffle_bytes: u64,
    pub output_records: u64,
    pub task_busy_us: u64,
    pub failed_tasks: u64,
    pub retried_tasks: u64,
    pub recomputed_tasks: u64,
    pub speculated_tasks: u64,
    pub speculative_wins: u64,
    pub injected_faults: u64,
    pub optimizer_rule_fires: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub executors_registered: u64,
    pub executors_lost: u64,
    pub heartbeats: u64,
    pub blocks_pushed: u64,
    pub block_bytes_pushed: u64,
    pub blocks_fetched: u64,
    pub block_bytes_fetched: u64,
    pub columnar_batches: u64,
    pub columnar_rows: u64,
    pub fused_pipelines: u64,
    pub agg_rows_in: u64,
    pub agg_groups_out: u64,
    pub events_lost: u64,
    pub cached_bytes: u64,
    pub task_duration_hist: [u64; HIST_BUCKETS],
    pub block_fetch_hist: [u64; HIST_BUCKETS],
    pub queue_wait_hist: [u64; HIST_BUCKETS],
}

impl Metrics {
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs: self.jobs.load(Ordering::Relaxed),
            stages: self.stages.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            input_records: self.input_records.load(Ordering::Relaxed),
            input_bytes: self.input_bytes.load(Ordering::Relaxed),
            shuffle_records: self.shuffle_records.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle_bytes.load(Ordering::Relaxed),
            output_records: self.output_records.load(Ordering::Relaxed),
            task_busy_us: self.task_busy_us.load(Ordering::Relaxed),
            failed_tasks: self.failed_tasks.load(Ordering::Relaxed),
            retried_tasks: self.retried_tasks.load(Ordering::Relaxed),
            recomputed_tasks: self.recomputed_tasks.load(Ordering::Relaxed),
            speculated_tasks: self.speculated_tasks.load(Ordering::Relaxed),
            speculative_wins: self.speculative_wins.load(Ordering::Relaxed),
            injected_faults: self.injected_faults.load(Ordering::Relaxed),
            optimizer_rule_fires: self.optimizer_rule_fires.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            executors_registered: self.executors_registered.load(Ordering::Relaxed),
            executors_lost: self.executors_lost.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
            blocks_pushed: self.blocks_pushed.load(Ordering::Relaxed),
            block_bytes_pushed: self.block_bytes_pushed.load(Ordering::Relaxed),
            blocks_fetched: self.blocks_fetched.load(Ordering::Relaxed),
            block_bytes_fetched: self.block_bytes_fetched.load(Ordering::Relaxed),
            columnar_batches: self.columnar_batches.load(Ordering::Relaxed),
            columnar_rows: self.columnar_rows.load(Ordering::Relaxed),
            fused_pipelines: self.fused_pipelines.load(Ordering::Relaxed),
            agg_rows_in: self.agg_rows_in.load(Ordering::Relaxed),
            agg_groups_out: self.agg_groups_out.load(Ordering::Relaxed),
            events_lost: self.events_lost.load(Ordering::Relaxed),
            cached_bytes: self.cached_bytes.load(Ordering::Relaxed),
            task_duration_hist: self.task_duration_hist.snapshot(),
            block_fetch_hist: self.block_fetch_hist.snapshot(),
            queue_wait_hist: self.queue_wait_hist.snapshot(),
        }
    }
}

/// Pretty-printer for shell `:metrics` and the bench harness: one counter
/// per line, gauge separated from the monotonic counters.
impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rows: &[(&str, u64)] = &[
            ("jobs", self.jobs),
            ("stages", self.stages),
            ("tasks", self.tasks),
            ("input_records", self.input_records),
            ("input_bytes", self.input_bytes),
            ("shuffle_records", self.shuffle_records),
            ("shuffle_bytes", self.shuffle_bytes),
            ("output_records", self.output_records),
            ("task_busy_us", self.task_busy_us),
            ("failed_tasks", self.failed_tasks),
            ("retried_tasks", self.retried_tasks),
            ("recomputed_tasks", self.recomputed_tasks),
            ("speculated_tasks", self.speculated_tasks),
            ("speculative_wins", self.speculative_wins),
            ("injected_faults", self.injected_faults),
            ("optimizer_rule_fires", self.optimizer_rule_fires),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("cache_evictions", self.cache_evictions),
            ("executors_registered", self.executors_registered),
            ("executors_lost", self.executors_lost),
            ("heartbeats", self.heartbeats),
            ("blocks_pushed", self.blocks_pushed),
            ("block_bytes_pushed", self.block_bytes_pushed),
            ("blocks_fetched", self.blocks_fetched),
            ("block_bytes_fetched", self.block_bytes_fetched),
            ("columnar_batches", self.columnar_batches),
            ("columnar_rows", self.columnar_rows),
            ("fused_pipelines", self.fused_pipelines),
            ("agg_rows_in", self.agg_rows_in),
            ("agg_groups_out", self.agg_groups_out),
            ("events_lost", self.events_lost),
        ];
        writeln!(f, "counters:")?;
        for (name, value) in rows {
            writeln!(f, "  {name:<18} {value}")?;
        }
        writeln!(f, "latency (µs):")?;
        let hists: &[(&str, &[u64; HIST_BUCKETS])] = &[
            ("task_duration", &self.task_duration_hist),
            ("block_fetch", &self.block_fetch_hist),
            ("queue_wait", &self.queue_wait_hist),
        ];
        for (name, hist) in hists {
            writeln!(
                f,
                "  {name:<18} p50={} p95={} p99={}",
                histogram_percentile(hist, 0.50),
                histogram_percentile(hist, 0.95),
                histogram_percentile(hist, 0.99),
            )?;
        }
        writeln!(f, "gauges:")?;
        write!(f, "  {:<18} {}", "cached_bytes", self.cached_bytes)
    }
}

/// Per-task scratch counters, reset for every attempt and snapshotted into
/// [`Event::TaskEnd`] when the attempt finishes. The global [`Metrics`]
/// totals are folded from these snapshots by the metrics listener, so the
/// per-task records and the engine-wide counters share one code path.
#[derive(Default)]
pub struct TaskMetrics {
    pub input_records: AtomicU64,
    pub input_bytes: AtomicU64,
    pub shuffle_records: AtomicU64,
    pub shuffle_bytes: AtomicU64,
    pub output_records: AtomicU64,
    /// Display-only (see [`TaskCounters::cache_hits`]).
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
}

impl TaskMetrics {
    pub fn snapshot(&self) -> TaskCounters {
        TaskCounters {
            input_records: self.input_records.load(Ordering::Relaxed),
            input_bytes: self.input_bytes.load(Ordering::Relaxed),
            shuffle_records: self.shuffle_records.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle_bytes.load(Ordering::Relaxed),
            output_records: self.output_records.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Per-task context handed to every partition computation.
pub struct TaskContext {
    /// The partition index this task computes.
    pub partition: usize,
    /// 0-based attempt number: 0 for the first launch, higher for retries
    /// and speculative copies. Deterministic partition computations ignore
    /// it; the fault injector keys its decisions on it.
    pub attempt: u32,
    /// The job id this task belongs to (see [`Metrics::jobs`]).
    pub stage: u64,
    /// Whether this attempt is a speculative copy of a straggler.
    pub speculative: bool,
    /// This attempt's scratch counters (shared with closures the task body
    /// spawns, hence the `Arc`).
    pub task_metrics: Arc<TaskMetrics>,
    /// The scheduler event bus, for shuffle/cache-layer emissions.
    pub(crate) events: Arc<EventBus>,
    /// The chaos injector, shared with the driver.
    pub injector: Arc<FaultInjector>,
}

/// Per-task recovery bookkeeping in the driver loop.
struct TaskSlot {
    /// Failed attempts so far, counted against the budget.
    failures: u32,
    /// Next unused attempt number (attempt 0 is launched up front).
    next_attempt: u32,
    /// The attempt number of the speculative copy, if one was launched.
    speculative_attempt: Option<u32>,
    /// When the most recent attempt was submitted (drives speculation).
    last_launch: Instant,
    /// First failure observed, surfaced if the budget runs out.
    first_cause: Option<FailureCause>,
}

/// A fixed pool of executor worker threads fed over a crossbeam channel.
pub struct ExecutorPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    size: usize,
    events: Arc<EventBus>,
    injector: Arc<FaultInjector>,
}

impl ExecutorPool {
    pub fn new(size: usize, events: Arc<EventBus>, injector: Arc<FaultInjector>) -> Self {
        install_task_panic_hook();
        let size = size.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let mut handles = Vec::with_capacity(size);
        for worker_id in 0..size {
            let rx = receiver.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sparklite-exec-{worker_id}"))
                .spawn(move || {
                    IN_WORKER.with(|f| f.set(true));
                    WORKER_ID.with(|w| w.set(Some(worker_id as u64)));
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawning executor thread");
            handles.push(handle);
        }
        ExecutorPool { sender: Some(sender), handles, size, events, injector }
    }

    /// Number of executor worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs one task per entry of `tasks`, in parallel, and returns results
    /// in task order, retrying retryable failures per the fault plan.
    ///
    /// When called from inside a worker thread (a nested job), the tasks run
    /// inline on the calling thread instead, because parking a worker on a
    /// sub-job could exhaust the pool — the same reason Spark jobs do not
    /// nest.
    pub fn run<R, F>(&self, tasks: Vec<F>) -> Result<Vec<R>>
    where
        R: Send + 'static,
        F: Fn(&TaskContext) -> R + Send + Sync + 'static,
    {
        let labeled = tasks
            .into_iter()
            .enumerate()
            .map(|(partition, t)| (partition, Arc::new(t) as Arc<TaskFn<R>>))
            .collect();
        self.run_labeled(labeled)
    }

    /// [`ExecutorPool::run`] with explicit partition labels, so lineage
    /// recovery can re-run a *subset* of a stage's partitions while every
    /// task still sees its original partition index (sampling and sort
    /// reservoirs seed their RNGs from it).
    pub(crate) fn run_labeled<R: Send + 'static>(
        &self,
        tasks: Vec<(usize, Arc<TaskFn<R>>)>,
    ) -> Result<Vec<R>> {
        let job = self.events.next_job_id();
        self.events.emit(Event::JobStart {
            job,
            stage: current_stage(),
            num_tasks: tasks.len() as u64,
        });
        let out = self.run_job(job, tasks);
        if self.events.verbose() {
            self.events.emit(Event::JobEnd { job, ok: out.is_ok() });
        }
        out
    }

    /// The retry/speculation scheduler loop for one job's task wave.
    fn run_job<R: Send + 'static>(
        &self,
        job: u64,
        tasks: Vec<(usize, Arc<TaskFn<R>>)>,
    ) -> Result<Vec<R>> {
        let budget = self.injector.plan().max_task_failures.max(1);

        if IN_WORKER.with(|f| f.get()) {
            // Nested job: run inline, sequentially, with the same retry
            // classification (but no speculation — there is no parallelism
            // to speculate against).
            let mut out = Vec::with_capacity(tasks.len());
            for (partition, task) in &tasks {
                out.push(self.run_inline(job, budget, *partition, task)?);
            }
            return Ok(out);
        }

        let n = tasks.len();
        type Report<R> = (usize, u32, Duration, std::result::Result<R, FailureCause>);
        let (result_tx, result_rx) = unbounded::<Report<R>>();
        let sender = self.sender.as_ref().expect("pool is alive");
        let submit = |index: usize, attempt: u32, speculative: bool| {
            let (partition, task) = &tasks[index];
            let partition = *partition;
            let task = Arc::clone(task);
            let tx = result_tx.clone();
            let events = Arc::clone(&self.events);
            let injector = Arc::clone(&self.injector);
            let queued = Instant::now();
            let body: Job = Box::new(move || {
                let tc = TaskContext {
                    partition,
                    attempt,
                    stage: job,
                    speculative,
                    task_metrics: Arc::new(TaskMetrics::default()),
                    events,
                    injector,
                };
                let (elapsed, r) = run_caught(task.as_ref(), tc, queued);
                // The receiver may already have dropped after a failure;
                // that is fine.
                let _ = tx.send((index, attempt, elapsed, r));
            });
            sender.send(body).expect("executor pool is alive");
        };

        let mut slots: Vec<TaskSlot> = (0..n)
            .map(|_| TaskSlot {
                failures: 0,
                next_attempt: 1,
                speculative_attempt: None,
                last_launch: Instant::now(),
                first_cause: None,
            })
            .collect();
        for (index, slot) in slots.iter_mut().enumerate() {
            submit(index, 0, false);
            slot.last_launch = Instant::now();
        }

        let speculation = self.injector.plan().speculation;
        let quantile = self.injector.plan().speculation_quantile.clamp(0.0, 1.0);
        let multiplier = self.injector.plan().speculation_multiplier.max(1.0);
        let quorum = ((quantile * n as f64).ceil() as usize).clamp(1, n);
        let mut durations: Vec<Duration> = Vec::with_capacity(n);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut filled = 0usize;

        while filled < n {
            // Fast path without speculation: block until the next report.
            // With speculation: wake periodically to look for stragglers.
            let report = if speculation {
                match result_rx.recv_timeout(SPECULATION_TICK) {
                    Ok(r) => Some(r),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        unreachable!("driver holds a sender; reports cannot disconnect")
                    }
                }
            } else {
                Some(result_rx.recv().expect("all tasks report"))
            };

            let Some((index, attempt, elapsed, outcome)) = report else {
                // Speculation tick: once the quorum of tasks has finished,
                // re-launch any task that has been running for more than
                // `multiplier ×` the median successful duration.
                if filled < quorum || durations.is_empty() {
                    continue;
                }
                let mut sorted = durations.clone();
                sorted.sort();
                let median = sorted[sorted.len() / 2];
                let threshold = median.mul_f64(multiplier).max(SPECULATION_MIN_AGE);
                for (i, slot) in slots.iter_mut().enumerate() {
                    if results[i].is_none()
                        && slot.speculative_attempt.is_none()
                        && slot.last_launch.elapsed() > threshold
                    {
                        let a = slot.next_attempt;
                        slot.next_attempt += 1;
                        slot.speculative_attempt = Some(a);
                        self.events.emit(Event::SpeculativeLaunch {
                            job,
                            partition: tasks[i].0 as u64,
                            attempt: a,
                        });
                        submit(i, a, true);
                    }
                }
                continue;
            };

            match outcome {
                Ok(r) => {
                    // First-writer-wins: a partition's slot is committed by
                    // whichever attempt reports success first; later copies
                    // are discarded.
                    if results[index].is_none() {
                        if slots[index].speculative_attempt == Some(attempt) {
                            self.events.emit(Event::SpeculativeWin {
                                job,
                                partition: tasks[index].0 as u64,
                            });
                        }
                        results[index] = Some(r);
                        filled += 1;
                        durations.push(elapsed);
                    }
                }
                Err(cause) => {
                    // failed_tasks is counted by the metrics listener from
                    // the worker-side TaskEnd event.
                    if results[index].is_some() {
                        // A losing speculative copy failed after the slot
                        // was already committed; nothing to recover.
                        continue;
                    }
                    if cause.kind == FailureKind::App {
                        // Deterministic application error: retrying would
                        // fail identically. Fail the job fast.
                        return Err(SparkliteError::TaskFailed(cause));
                    }
                    let slot = &mut slots[index];
                    slot.failures += 1;
                    if slot.first_cause.is_none() {
                        slot.first_cause = Some(cause);
                    }
                    if slot.failures >= budget {
                        let cause = slot.first_cause.take().expect("recorded above");
                        return Err(SparkliteError::TaskRetriesExhausted {
                            cause,
                            attempts: slot.failures,
                        });
                    }
                    let a = slot.next_attempt;
                    slot.next_attempt += 1;
                    slot.last_launch = Instant::now();
                    self.events.emit(Event::TaskResubmitted {
                        job,
                        partition: tasks[index].0 as u64,
                        next_attempt: a,
                    });
                    submit(index, a, false);
                }
            }
        }
        Ok(results.into_iter().map(|s| s.expect("every slot filled")).collect())
    }

    /// The inline (nested-job) variant of the retry loop.
    fn run_inline<R: Send + 'static>(
        &self,
        job: u64,
        budget: u32,
        partition: usize,
        task: &Arc<TaskFn<R>>,
    ) -> Result<R> {
        let mut failures = 0u32;
        let mut first_cause: Option<FailureCause> = None;
        loop {
            let tc = TaskContext {
                partition,
                attempt: failures,
                stage: job,
                speculative: false,
                task_metrics: Arc::new(TaskMetrics::default()),
                events: Arc::clone(&self.events),
                injector: Arc::clone(&self.injector),
            };
            match run_caught(task.as_ref(), tc, Instant::now()).1 {
                Ok(r) => return Ok(r),
                Err(cause) => {
                    if cause.kind == FailureKind::App {
                        return Err(SparkliteError::TaskFailed(cause));
                    }
                    failures += 1;
                    if first_cause.is_none() {
                        first_cause = Some(cause);
                    }
                    if failures >= budget {
                        let cause = first_cause.take().expect("recorded above");
                        return Err(SparkliteError::TaskRetriesExhausted {
                            cause,
                            attempts: failures,
                        });
                    }
                    self.events.emit(Event::TaskResubmitted {
                        job,
                        partition: partition as u64,
                        next_attempt: failures,
                    });
                }
            }
        }
    }
}

/// Executes one task attempt under a panic guard, classifies any failure,
/// and emits the attempt's `TaskStart`/`TaskEnd` events. `TaskEnd` (which
/// derives `task_busy_us`, `failed_tasks` and the per-task counter totals)
/// is emitted *before* the result is reported back, so the driver's
/// post-join metrics snapshot is always consistent with the event stream.
fn run_caught<R>(
    task: &TaskFn<R>,
    tc: TaskContext,
    queued: Instant,
) -> (Duration, std::result::Result<R, FailureCause>) {
    let events = Arc::clone(&tc.events);
    let worker = WORKER_ID.with(|w| w.get());
    let queue_us = queued.elapsed().as_micros() as u64;
    if events.verbose() {
        events.emit(Event::TaskStart {
            job: tc.stage,
            partition: tc.partition as u64,
            attempt: tc.attempt,
            speculative: tc.speculative,
            worker,
        });
    }
    let started = Instant::now();
    TASK_DEPTH.with(|d| d.set(d.get() + 1));
    let result = catch_unwind(AssertUnwindSafe(|| {
        tc.injector.on_task_start(&tc);
        task(&tc)
    }));
    TASK_DEPTH.with(|d| d.set(d.get() - 1));
    let elapsed = started.elapsed();
    let outcome = result.map_err(|payload| classify(payload, &tc));
    events.emit(Event::TaskEnd {
        job: tc.stage,
        partition: tc.partition as u64,
        attempt: tc.attempt,
        speculative: tc.speculative,
        worker,
        busy_us: elapsed.as_micros() as u64,
        queue_us,
        counters: tc.task_metrics.snapshot(),
        failure: outcome.as_ref().err().cloned(),
    });
    (elapsed, outcome)
}

/// Maps a caught panic payload to a [`FailureCause`]. Typed payloads
/// ([`AppAbort`], [`InjectedFault`]) carry their classification; anything
/// else is an unclassified panic, retried like Spark retries an executor
/// exception.
fn classify(payload: Box<dyn std::any::Any + Send>, tc: &TaskContext) -> FailureCause {
    let (kind, message) = if let Some(f) = payload.downcast_ref::<InjectedFault>() {
        (FailureKind::Injected, f.0.clone())
    } else if let Some(a) = payload.downcast_ref::<AppAbort>() {
        (FailureKind::App, a.0.clone())
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (FailureKind::Panic, (*s).to_string())
    } else if let Some(s) = payload.downcast_ref::<String>() {
        (FailureKind::Panic, s.clone())
    } else {
        (FailureKind::Panic, "task panicked".to_string())
    };
    FailureCause { kind, attempt: tc.attempt, task: tc.partition, stage: tc.stage, message }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        // Closing the channel lets every worker's recv() fail and exit.
        self.sender.take();
        let current = std::thread::current().id();
        for h in self.handles.drain(..) {
            // A worker can itself drop the last reference to the pool: a
            // task closure owning the context is dropped on the worker just
            // after its result is reported. Joining the current thread
            // would deadlock (EDEADLK), so that worker is detached instead
            // and exits on its own through the closed channel.
            if h.thread().id() == current {
                drop(h);
            } else {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conf::FaultPlan;

    fn pool_with(n: usize, plan: FaultPlan) -> (ExecutorPool, Arc<Metrics>) {
        let metrics = Arc::new(Metrics::default());
        let events = Arc::new(EventBus::new(Arc::clone(&metrics)));
        let injector = Arc::new(FaultInjector::new(plan, Arc::clone(&events)));
        (ExecutorPool::new(n, events, injector), metrics)
    }

    fn pool(n: usize) -> ExecutorPool {
        pool_with(n, FaultPlan::default()).0
    }

    #[test]
    fn runs_tasks_in_order() {
        let p = pool(4);
        let tasks: Vec<_> = (0..32).map(|i| move |_tc: &TaskContext| i * 2).collect();
        let out = p.run(tasks).unwrap();
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn actually_parallel() {
        // With 4 workers, 4 tasks that each wait for all 4 to start can only
        // finish if they run concurrently.
        use std::sync::Barrier;
        let p = pool(4);
        let barrier = Arc::new(Barrier::new(4));
        let tasks: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&barrier);
                move |_tc: &TaskContext| {
                    b.wait();
                    1usize
                }
            })
            .collect();
        assert_eq!(p.run(tasks).unwrap().iter().sum::<usize>(), 4);
    }

    #[test]
    fn panics_become_errors() {
        let p = pool(2);
        let tasks: Vec<_> = (0..3)
            .map(|i| {
                move |_tc: &TaskContext| {
                    if i == 1 {
                        panic!("boom in partition 1");
                    }
                    i
                }
            })
            .collect();
        let err = p.run(tasks).unwrap_err();
        match err {
            // An unclassified panic is retried to the default budget of 4,
            // then surfaced with its first cause.
            SparkliteError::TaskRetriesExhausted { cause, attempts } => {
                assert_eq!(cause.task, 1);
                assert_eq!(cause.kind, FailureKind::Panic);
                assert_eq!(attempts, 4);
                assert!(cause.message.contains("boom"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn app_errors_fail_fast_without_retry() {
        let (p, metrics) = pool_with(2, FaultPlan::default());
        let tasks: Vec<_> = (0..3)
            .map(|i| {
                move |_tc: &TaskContext| {
                    if i == 1 {
                        crate::rdd::task_bail("[FOAR0001] dynamic error: division by zero");
                    }
                    i
                }
            })
            .collect();
        let err = p.run(tasks).unwrap_err();
        match err {
            SparkliteError::TaskFailed(cause) => {
                assert_eq!(cause.kind, FailureKind::App);
                assert_eq!(cause.attempt, 0, "app errors must not be retried");
                assert!(cause.message.contains("FOAR0001"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.failed_tasks, 1);
        assert_eq!(snap.retried_tasks, 0);
    }

    #[test]
    fn injected_failures_are_retried_to_success() {
        let (p, metrics) = pool_with(2, FaultPlan::default().with_task_failures(1.0));
        // Probability 1.0 with the default per-task cap of 1: every task's
        // first attempt is killed, every retry succeeds.
        let tasks: Vec<_> = (0..6).map(|i| move |_tc: &TaskContext| i * 10).collect();
        let out = p.run(tasks).unwrap();
        assert_eq!(out, (0..6).map(|i| i * 10).collect::<Vec<_>>());
        let snap = metrics.snapshot();
        assert_eq!(snap.failed_tasks, 6);
        assert_eq!(snap.retried_tasks, 6);
        assert_eq!(snap.injected_faults, 6);
    }

    #[test]
    fn exhausted_budget_is_a_typed_error() {
        let plan = FaultPlan::default()
            .with_task_failures(1.0)
            .with_max_injected_per_task(u32::MAX)
            .with_max_task_failures(3);
        let (p, metrics) = pool_with(2, plan);
        let err = p.run((0..2).map(|_| |_tc: &TaskContext| ()).collect::<Vec<_>>()).unwrap_err();
        match err {
            SparkliteError::TaskRetriesExhausted { cause, attempts } => {
                assert_eq!(cause.kind, FailureKind::Injected);
                assert_eq!(attempts, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(metrics.snapshot().failed_tasks >= 3);
    }

    #[test]
    fn speculation_rescues_a_straggler() {
        let plan = FaultPlan::default().with_speculation(true);
        let (p, metrics) = pool_with(4, plan);
        // Partition 3's first attempt stalls; the speculative copy (a later
        // attempt) returns immediately and must win the slot.
        let tasks: Vec<_> = (0..4)
            .map(|i| {
                move |tc: &TaskContext| {
                    if i == 3 && tc.attempt == 0 {
                        std::thread::sleep(Duration::from_millis(400));
                    }
                    i * 2
                }
            })
            .collect();
        let out = p.run(tasks).unwrap();
        assert_eq!(out, vec![0, 2, 4, 6]);
        let snap = metrics.snapshot();
        assert_eq!(snap.speculated_tasks, 1);
        assert_eq!(snap.speculative_wins, 1);
    }

    #[test]
    fn nested_jobs_run_inline() {
        let (p, metrics) = pool_with(1, FaultPlan::default());
        let p = Arc::new(p);
        // A single worker: a blocking nested job would deadlock if it were
        // scheduled on the pool.
        let inner_pool = Arc::clone(&p);
        let out = p
            .run(vec![move |_tc: &TaskContext| {
                let inner: Vec<usize> =
                    inner_pool.run((0..3).map(|i| move |_tc: &TaskContext| i).collect()).unwrap();
                inner.iter().sum::<usize>()
            }])
            .unwrap();
        assert_eq!(out, vec![3]);
        assert_eq!(metrics.snapshot().jobs, 2);
    }

    #[test]
    fn nested_jobs_retry_inline() {
        let (p, metrics) = pool_with(1, FaultPlan::default().with_task_failures(1.0));
        let p = Arc::new(p);
        let inner_pool = Arc::clone(&p);
        let out = p
            .run(vec![move |_tc: &TaskContext| {
                let inner: Vec<usize> =
                    inner_pool.run((0..3).map(|i| move |_tc: &TaskContext| i).collect()).unwrap();
                inner.iter().sum::<usize>()
            }])
            .unwrap();
        assert_eq!(out, vec![3]);
        // Outer task + 3 inner tasks each survived one injected kill.
        assert_eq!(metrics.snapshot().retried_tasks, 4);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let h = Histogram::default();
        for us in [1, 5, 5, 5, 1_000_000] {
            h.record(us);
        }
        let snap = h.snapshot();
        assert_eq!(snap.iter().sum::<u64>(), 5);
        assert_eq!(histogram_percentile(&snap, 0.50), 1 << 2);
        assert_eq!(histogram_percentile(&snap, 0.99), 1 << 19);
        assert_eq!(histogram_percentile(&[0; HIST_BUCKETS], 0.5), 0);
    }

    #[test]
    fn tasks_record_duration_and_queue_histograms() {
        let (p, metrics) = pool_with(2, FaultPlan::default());
        p.run((0..5).map(|_| |_tc: &TaskContext| ()).collect::<Vec<_>>()).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.task_duration_hist.iter().sum::<u64>(), 5);
        assert_eq!(snap.queue_wait_hist.iter().sum::<u64>(), 5);
    }

    #[test]
    fn metrics_count_tasks() {
        let (p, metrics) = pool_with(2, FaultPlan::default());
        p.run((0..5).map(|_| |_tc: &TaskContext| ()).collect::<Vec<_>>()).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.jobs, 1);
        assert_eq!(snap.tasks, 5);
    }
}
