//! The executor pool and task machinery.
//!
//! Each worker thread models one executor core of the paper's clusters; the
//! scale-out experiments sweep the pool size. Tasks are closures scheduled
//! one per partition; panics inside a task are caught and surfaced as
//! [`SparkliteError::TaskFailed`] rather than tearing the process down, the
//! same contract a Spark driver gets from failed executors.

use crate::error::{Result, SparkliteError};
use crossbeam::channel::{unbounded, Sender};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Set while a worker thread executes a task; used to run nested jobs
    /// inline (Spark jobs do not nest — see paper §5.6).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Engine-wide counters. All counters are monotonically increasing; read a
/// consistent view with [`Metrics::snapshot`].
#[derive(Default)]
pub struct Metrics {
    pub jobs: AtomicU64,
    pub stages: AtomicU64,
    pub tasks: AtomicU64,
    pub input_records: AtomicU64,
    pub input_bytes: AtomicU64,
    pub shuffle_records: AtomicU64,
    pub shuffle_bytes: AtomicU64,
    pub output_records: AtomicU64,
    /// Total wall time spent inside tasks, in microseconds — the
    /// "aggregated runtime over the cluster" of the paper's Fig. 14.
    pub task_busy_us: AtomicU64,
}

/// A point-in-time copy of [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub jobs: u64,
    pub stages: u64,
    pub tasks: u64,
    pub input_records: u64,
    pub input_bytes: u64,
    pub shuffle_records: u64,
    pub shuffle_bytes: u64,
    pub output_records: u64,
    pub task_busy_us: u64,
}

impl Metrics {
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs: self.jobs.load(Ordering::Relaxed),
            stages: self.stages.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            input_records: self.input_records.load(Ordering::Relaxed),
            input_bytes: self.input_bytes.load(Ordering::Relaxed),
            shuffle_records: self.shuffle_records.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle_bytes.load(Ordering::Relaxed),
            output_records: self.output_records.load(Ordering::Relaxed),
            task_busy_us: self.task_busy_us.load(Ordering::Relaxed),
        }
    }

    pub fn add(&self, field: MetricField, n: u64) {
        let counter = match field {
            MetricField::InputRecords => &self.input_records,
            MetricField::InputBytes => &self.input_bytes,
            MetricField::ShuffleRecords => &self.shuffle_records,
            MetricField::ShuffleBytes => &self.shuffle_bytes,
            MetricField::OutputRecords => &self.output_records,
        };
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Counter selector for [`Metrics::add`].
#[derive(Debug, Clone, Copy)]
pub enum MetricField {
    InputRecords,
    InputBytes,
    ShuffleRecords,
    ShuffleBytes,
    OutputRecords,
}

/// Per-task context handed to every partition computation.
pub struct TaskContext {
    /// The partition index this task computes.
    pub partition: usize,
    /// Engine metrics, shared with the driver.
    pub metrics: Arc<Metrics>,
}

/// A fixed pool of executor worker threads fed over a crossbeam channel.
pub struct ExecutorPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    size: usize,
    metrics: Arc<Metrics>,
}

impl ExecutorPool {
    pub fn new(size: usize, metrics: Arc<Metrics>) -> Self {
        let size = size.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let mut handles = Vec::with_capacity(size);
        for worker_id in 0..size {
            let rx = receiver.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sparklite-exec-{worker_id}"))
                .spawn(move || {
                    IN_WORKER.with(|f| f.set(true));
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawning executor thread");
            handles.push(handle);
        }
        ExecutorPool { sender: Some(sender), handles, size, metrics }
    }

    /// Number of executor worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs one task per entry of `tasks`, in parallel, and returns results
    /// in task order. A panicking task fails the whole job (remaining tasks
    /// may still run; their results are discarded).
    ///
    /// When called from inside a worker thread (a nested job), the tasks run
    /// inline on the calling thread instead, because parking a worker on a
    /// sub-job could exhaust the pool — the same reason Spark jobs do not
    /// nest.
    pub fn run<R, F>(&self, tasks: Vec<F>) -> Result<Vec<R>>
    where
        R: Send + 'static,
        F: FnOnce(&TaskContext) -> R + Send + 'static,
    {
        self.metrics.jobs.fetch_add(1, Ordering::Relaxed);
        self.metrics.tasks.fetch_add(tasks.len() as u64, Ordering::Relaxed);

        if IN_WORKER.with(|f| f.get()) {
            // Nested job: run inline, sequentially.
            let mut out = Vec::with_capacity(tasks.len());
            for (partition, task) in tasks.into_iter().enumerate() {
                let tc = TaskContext { partition, metrics: Arc::clone(&self.metrics) };
                out.push(run_caught(task, tc, partition)?);
            }
            return Ok(out);
        }

        let n = tasks.len();
        let (result_tx, result_rx) = unbounded::<(usize, Result<R>)>();
        let sender = self.sender.as_ref().expect("pool is alive");
        for (partition, task) in tasks.into_iter().enumerate() {
            let tx = result_tx.clone();
            let metrics = Arc::clone(&self.metrics);
            let job: Job = Box::new(move || {
                let tc = TaskContext { partition, metrics };
                let r = run_caught(task, tc, partition);
                // The receiver may already have dropped after a failure;
                // that is fine.
                let _ = tx.send((partition, r));
            });
            sender.send(job).expect("executor pool is alive");
        }
        drop(result_tx);

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (partition, r) = result_rx.recv().expect("all tasks report");
            slots[partition] = Some(r?);
        }
        Ok(slots.into_iter().map(|s| s.expect("every slot filled")).collect())
    }
}

fn run_caught<R, F>(task: F, tc: TaskContext, partition: usize) -> Result<R>
where
    F: FnOnce(&TaskContext) -> R,
{
    let metrics = Arc::clone(&tc.metrics);
    let started = std::time::Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| task(&tc)));
    metrics.task_busy_us.fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
    result.map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            s.to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "task panicked".to_string()
        };
        SparkliteError::TaskFailed { partition, message }
    })
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        // Closing the channel lets every worker's recv() fail and exit.
        self.sender.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> ExecutorPool {
        ExecutorPool::new(n, Arc::new(Metrics::default()))
    }

    #[test]
    fn runs_tasks_in_order() {
        let p = pool(4);
        let tasks: Vec<_> = (0..32).map(|i| move |_tc: &TaskContext| i * 2).collect();
        let out = p.run(tasks).unwrap();
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn actually_parallel() {
        // With 4 workers, 4 tasks that each wait for all 4 to start can only
        // finish if they run concurrently.
        use std::sync::Barrier;
        let p = pool(4);
        let barrier = Arc::new(Barrier::new(4));
        let tasks: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&barrier);
                move |_tc: &TaskContext| {
                    b.wait();
                    1usize
                }
            })
            .collect();
        assert_eq!(p.run(tasks).unwrap().iter().sum::<usize>(), 4);
    }

    #[test]
    fn panics_become_errors() {
        let p = pool(2);
        #[allow(clippy::type_complexity)]
        let tasks: Vec<Box<dyn FnOnce(&TaskContext) -> usize + Send>> =
            vec![Box::new(|_| 1), Box::new(|_| panic!("boom in partition 1")), Box::new(|_| 3)];
        let err = p.run(tasks).unwrap_err();
        match err {
            SparkliteError::TaskFailed { partition, message } => {
                assert_eq!(partition, 1);
                assert!(message.contains("boom"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn nested_jobs_run_inline() {
        let metrics = Arc::new(Metrics::default());
        let p = Arc::new(ExecutorPool::new(1, Arc::clone(&metrics)));
        // A single worker: a blocking nested job would deadlock if it were
        // scheduled on the pool.
        let inner_pool = Arc::clone(&p);
        let out = p
            .run(vec![move |_tc: &TaskContext| {
                let inner: Vec<usize> =
                    inner_pool.run((0..3).map(|i| move |_tc: &TaskContext| i).collect()).unwrap();
                inner.iter().sum::<usize>()
            }])
            .unwrap();
        assert_eq!(out, vec![3]);
        assert_eq!(metrics.snapshot().jobs, 2);
    }

    #[test]
    fn metrics_count_tasks() {
        let metrics = Arc::new(Metrics::default());
        let p = ExecutorPool::new(2, Arc::clone(&metrics));
        p.run((0..5).map(|_| |_tc: &TaskContext| ()).collect::<Vec<_>>()).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.jobs, 1);
        assert_eq!(snap.tasks, 5);
    }
}
