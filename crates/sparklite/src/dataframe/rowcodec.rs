//! A compact binary codec for [`Row`]s, so DataFrames can persist at
//! [`StorageLevel::MemorySerialized`](crate::cache::StorageLevel) with real
//! byte accounting: tag byte per value, LEB128 varints for lengths and
//! zigzag-encoded integers, IEEE-754 bits for floats.

use super::{Row, Value};
use crate::cache::CacheCodec;
use std::sync::Arc;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_I64: u8 = 3;
const TAG_F64: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_BIN: u8 = 6;
const TAG_LIST: u8 = 7;

fn write_varu(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn write_vari(out: &mut Vec<u8>, v: i64) {
    write_varu(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn write_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::I64(i) => {
            out.push(TAG_I64);
            write_vari(out, *i);
        }
        Value::F64(f) => {
            out.push(TAG_F64);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            write_varu(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bin(b) => {
            out.push(TAG_BIN);
            write_varu(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Value::List(items) => {
            out.push(TAG_LIST);
            write_varu(out, items.len() as u64);
            for item in items.iter() {
                write_value(out, item);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn corrupt(&self) -> String {
        format!("corrupt row block at byte {}", self.pos)
    }

    fn byte(&mut self) -> Result<u8, String> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.corrupt())?;
        self.pos += 1;
        Ok(b)
    }

    fn bytes(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| self.corrupt())?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn varu(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.corrupt())
    }

    fn vari(&mut self) -> Result<i64, String> {
        let z = self.varu()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn value(&mut self) -> Result<Value, String> {
        Ok(match self.byte()? {
            TAG_NULL => Value::Null,
            TAG_FALSE => Value::Bool(false),
            TAG_TRUE => Value::Bool(true),
            TAG_I64 => Value::I64(self.vari()?),
            TAG_F64 => {
                let raw = self.bytes(8)?;
                Value::F64(f64::from_le_bytes(raw.try_into().expect("8 bytes")))
            }
            TAG_STR => {
                let n = self.varu()? as usize;
                let err = self.corrupt();
                let raw = self.bytes(n)?;
                let s = std::str::from_utf8(raw).map_err(|_| err)?;
                Value::Str(Arc::from(s))
            }
            TAG_BIN => {
                let n = self.varu()? as usize;
                Value::Bin(Arc::from(self.bytes(n)?))
            }
            TAG_LIST => {
                let n = self.varu()? as usize;
                if n > self.buf.len() {
                    return Err(self.corrupt());
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Value::List(Arc::new(items))
            }
            _ => return Err(self.corrupt()),
        })
    }

    fn row(&mut self) -> Result<Row, String> {
        let n = self.varu()? as usize;
        if n > self.buf.len() {
            return Err(self.corrupt());
        }
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(self.value()?);
        }
        Ok(row)
    }
}

/// The [`CacheCodec`] for DataFrame rows.
pub struct RowCodec;

impl CacheCodec<Row> for RowCodec {
    fn encode(&self, rows: &[Row]) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 * rows.len() + 4);
        write_varu(&mut out, rows.len() as u64);
        for row in rows {
            write_varu(&mut out, row.len() as u64);
            for v in row {
                write_value(&mut out, v);
            }
        }
        out
    }

    fn decode(&self, bytes: &[u8]) -> Result<Vec<Row>, String> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let n = r.varu()? as usize;
        if n > bytes.len() {
            return Err(r.corrupt());
        }
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push(r.row()?);
        }
        if r.pos != bytes.len() {
            return Err(r.corrupt());
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rows: Vec<Row>) {
        let enc = RowCodec.encode(&rows);
        assert_eq!(RowCodec.decode(&enc).expect("decodes"), rows);
    }

    #[test]
    fn roundtrips_every_value_kind() {
        roundtrip(vec![
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Bool(false),
                Value::I64(-42),
                Value::I64(i64::MAX),
                Value::F64(1.5),
                Value::str("héllo"),
                Value::Bin(Arc::from(&b"\x00\xFF"[..])),
                Value::list(vec![Value::I64(1), Value::list(vec![Value::Null])]),
            ],
            vec![],
            vec![Value::str("")],
        ]);
        roundtrip(vec![]);
    }

    #[test]
    fn rejects_truncated_input() {
        let enc = RowCodec.encode(&[vec![Value::str("abcdef")]]);
        assert!(RowCodec.decode(&enc[..enc.len() - 1]).is_err());
        assert!(RowCodec.decode(&[0xFF]).is_err());
    }
}
