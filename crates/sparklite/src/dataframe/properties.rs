//! Static plan-property analysis: a bottom-up abstract interpretation that
//! computes, for every `LogicalPlan` node, the properties an optimizer
//! rewrite is obliged to preserve — output schema, a sortedness guarantee,
//! the physical partitioning discipline, cardinality bounds, and the set of
//! statically-known constant columns.
//!
//! The analysis is deliberately *sound but incomplete*: a property is only
//! claimed when it provably holds, and "unknown" is always a legal answer.
//! That makes `check_preserved` a refinement check — a rewrite may teach the
//! analysis *more* (a tighter cardinality bound, a longer sort prefix) but
//! must never lose what was already known.

use super::expr::{Expr, SortDir};
use super::plan::LogicalPlan;
use super::{Schema, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How the rows of a plan node are distributed across partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partitioning {
    /// No guarantee (source partitioning, or destroyed by a rewrite).
    Unknown,
    /// Rows with equal values in these columns share a partition (the
    /// output of a hash shuffle keyed on them).
    HashBy(Vec<String>),
    /// Partitions hold contiguous key ranges in this order (the output of a
    /// range-partitioned sort).
    RangeBy(Vec<String>),
}

/// The abstract state computed for one plan node.
///
/// `ordering` is a *guarantee prefix*: the output stream is sorted by these
/// keys, most significant first; empty means no sortedness is known.
/// `min_rows`/`max_rows` bound the output cardinality (`max_rows == None`
/// means unbounded — e.g. below an `EXPLODE`). `constants` maps output
/// columns to the single value they are statically known to carry in every
/// row (literal projections, and their survivors through row-preserving
/// operators).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanProperties {
    pub schema: Arc<Schema>,
    pub ordering: Vec<(String, SortDir)>,
    pub partitioning: Partitioning,
    pub min_rows: u64,
    pub max_rows: Option<u64>,
    pub constants: BTreeMap<String, Value>,
}

/// Which properties a rewrite rule declares it preserves. `check_preserved`
/// only compares the declared dimensions, so a future rule that trades one
/// property for another (e.g. a sort-elimination rule) can opt out
/// honestly instead of lying.
#[derive(Debug, Clone, Copy)]
pub struct Preserved {
    pub schema: bool,
    pub ordering: bool,
    pub partitioning: bool,
    pub cardinality: bool,
    pub constants: bool,
}

impl Preserved {
    /// The contract every current rule makes: everything is preserved.
    pub const ALL: Preserved = Preserved {
        schema: true,
        ordering: true,
        partitioning: true,
        cardinality: true,
        constants: true,
    };

    /// Renders the declared set as a compact word list for docs and traces.
    pub fn describe(&self) -> String {
        let mut out = Vec::new();
        for (on, word) in [
            (self.schema, "schema"),
            (self.ordering, "ordering"),
            (self.partitioning, "partitioning"),
            (self.cardinality, "cardinality"),
            (self.constants, "constants"),
        ] {
            if on {
                out.push(word);
            }
        }
        out.join(", ")
    }
}

/// Computes the properties of `plan` bottom-up.
pub fn derive(plan: &LogicalPlan) -> PlanProperties {
    match plan {
        LogicalPlan::FromRdd { schema, .. } => PlanProperties {
            schema: Arc::clone(schema),
            ordering: Vec::new(),
            partitioning: Partitioning::Unknown,
            min_rows: 0,
            max_rows: None,
            constants: BTreeMap::new(),
        },
        LogicalPlan::Project { input, exprs, schema } => {
            let p = derive(input);
            // An input column survives the projection under its new name if
            // some output expression passes it through unchanged. When a
            // column is passed through more than once the *first* output
            // wins, matching the deterministic choice rules make.
            let passthrough = |col: &str| -> Option<String> {
                exprs.iter().find(|e| e.expr.is_col(col)).map(|e| e.name.clone())
            };
            let ordering = map_key_prefix(&p.ordering, &passthrough);
            let partitioning = match &p.partitioning {
                Partitioning::Unknown => Partitioning::Unknown,
                Partitioning::HashBy(keys) => map_all_keys(keys, &passthrough)
                    .map(Partitioning::HashBy)
                    .unwrap_or(Partitioning::Unknown),
                Partitioning::RangeBy(keys) => map_all_keys(keys, &passthrough)
                    .map(Partitioning::RangeBy)
                    .unwrap_or(Partitioning::Unknown),
            };
            let mut constants = BTreeMap::new();
            for e in exprs {
                match &e.expr {
                    Expr::Lit(v) => {
                        constants.insert(e.name.clone(), v.clone());
                    }
                    Expr::Col(c) => {
                        if let Some(v) = p.constants.get(c) {
                            constants.insert(e.name.clone(), v.clone());
                        }
                    }
                    _ => {}
                }
            }
            PlanProperties {
                schema: Arc::clone(schema),
                ordering,
                partitioning,
                min_rows: p.min_rows,
                max_rows: p.max_rows,
                constants,
            }
        }
        // A filter drops rows but never reorders, repartitions, or rewrites
        // the survivors, so everything except the lower cardinality bound
        // passes through.
        LogicalPlan::Filter { input, .. } => {
            let p = derive(input);
            PlanProperties { min_rows: 0, ..p }
        }
        LogicalPlan::Explode { input, col, as_name, schema } => {
            let p = derive(input);
            // Rows expand in place, so sortedness on columns *before* the
            // exploded one in the key list survives; the exploded column's
            // values change, cutting the guarantee there.
            let mut ordering = Vec::new();
            for (k, d) in &p.ordering {
                if k == col {
                    break;
                }
                ordering.push((k.clone(), *d));
            }
            let keeps = |keys: &[String]| keys.iter().all(|k| k != col);
            let partitioning = match &p.partitioning {
                Partitioning::HashBy(keys) if keeps(keys) => Partitioning::HashBy(keys.clone()),
                Partitioning::RangeBy(keys) if keeps(keys) => Partitioning::RangeBy(keys.clone()),
                _ => Partitioning::Unknown,
            };
            let mut constants = p.constants;
            constants.remove(col);
            constants.remove(as_name);
            PlanProperties {
                schema: Arc::clone(schema),
                ordering,
                partitioning,
                min_rows: 0,
                max_rows: None,
                constants,
            }
        }
        LogicalPlan::GroupBy { input, keys, aggs: _, schema } => {
            let p = derive(input);
            // The hash shuffle destroys sortedness but co-locates equal
            // keys; every group has at least one source row.
            let constants = keys
                .iter()
                .filter_map(|k| p.constants.get(k).map(|v| (k.clone(), v.clone())))
                .collect();
            PlanProperties {
                schema: Arc::clone(schema),
                ordering: Vec::new(),
                partitioning: Partitioning::HashBy(keys.clone()),
                min_rows: u64::from(p.min_rows > 0),
                max_rows: p.max_rows,
                constants,
            }
        }
        LogicalPlan::OrderBy { input, keys } => {
            let p = derive(input);
            PlanProperties {
                ordering: keys.clone(),
                partitioning: Partitioning::RangeBy(keys.iter().map(|(k, _)| k.clone()).collect()),
                ..p
            }
        }
        LogicalPlan::ZipWithIndex { input, name, schema, .. } => {
            let p = derive(input);
            let mut constants = p.constants;
            constants.remove(name);
            PlanProperties { schema: Arc::clone(schema), constants, ..p }
        }
        LogicalPlan::Limit { input, n } => {
            let p = derive(input);
            let n = *n as u64;
            PlanProperties {
                min_rows: p.min_rows.min(n),
                max_rows: Some(p.max_rows.map_or(n, |m| m.min(n))),
                ..p
            }
        }
    }
}

/// Maps the longest prefix of `keys` that survives a column rename.
fn map_key_prefix(
    keys: &[(String, SortDir)],
    rename: &dyn Fn(&str) -> Option<String>,
) -> Vec<(String, SortDir)> {
    let mut out = Vec::new();
    for (k, d) in keys {
        match rename(k) {
            Some(new) => out.push((new, *d)),
            None => break,
        }
    }
    out
}

/// Maps every key or reports failure (partitioning guarantees are
/// all-or-nothing: dropping one hash key breaks co-location).
fn map_all_keys(keys: &[String], rename: &dyn Fn(&str) -> Option<String>) -> Option<Vec<String>> {
    keys.iter().map(|k| rename(k)).collect()
}

/// Checks that `after` preserves every property of `before` that the rule
/// declared, up to refinement: `after` may know strictly more (longer sort
/// prefix, tighter cardinality bounds, extra constants) but must not lose
/// or contradict anything `before` established. Returns a human-readable
/// description of the first violation.
pub fn check_preserved(
    before: &PlanProperties,
    after: &PlanProperties,
    declared: Preserved,
) -> std::result::Result<(), String> {
    if declared.schema && before.schema.fields() != after.schema.fields() {
        return Err(format!(
            "schema changed: {:?} -> {:?}",
            before.schema.fields(),
            after.schema.fields()
        ));
    }
    if declared.ordering {
        let is_prefix = before.ordering.len() <= after.ordering.len()
            && before.ordering.iter().zip(&after.ordering).all(|(a, b)| a == b);
        if !is_prefix {
            return Err(format!(
                "ordering guarantee lost: {:?} is not a prefix of {:?}",
                before.ordering, after.ordering
            ));
        }
    }
    if declared.partitioning
        && before.partitioning != Partitioning::Unknown
        && before.partitioning != after.partitioning
    {
        return Err(format!(
            "partitioning changed: {:?} -> {:?}",
            before.partitioning, after.partitioning
        ));
    }
    if declared.cardinality {
        if after.min_rows < before.min_rows {
            return Err(format!(
                "minimum cardinality lost: {} -> {}",
                before.min_rows, after.min_rows
            ));
        }
        match (before.max_rows, after.max_rows) {
            (Some(b), Some(a)) if a > b => {
                return Err(format!("cardinality bound loosened: {b} -> {a}"));
            }
            (Some(b), None) => {
                return Err(format!("cardinality bound lost: {b} -> unbounded"));
            }
            _ => {}
        }
    }
    if declared.constants {
        for (col, v) in &before.constants {
            match after.constants.get(col) {
                Some(w) if w == v => {}
                Some(w) => {
                    return Err(format!("constant column '{col}' changed value: {v:?} -> {w:?}"));
                }
                None => {
                    return Err(format!("constant column '{col}' no longer constant ({v:?})"));
                }
            }
        }
    }
    Ok(())
}
