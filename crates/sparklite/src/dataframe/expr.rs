//! Scalar expressions over DataFrame rows, with SQL-style three-valued
//! logic, plus the key wrappers (hashable group keys, ordered sort keys)
//! that shuffles and sorts need.

use super::{Schema, Value};
use crate::error::Result;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A user-defined row function: receives the input schema and the row.
pub type UdfFn = dyn Fn(&Schema, &[Value]) -> Value + Send + Sync;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic operators. `Div` always yields a double (like Spark SQL's
/// `/`); use `Mod` for integer remainders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// An unbound scalar expression (column references by name).
#[derive(Clone)]
pub enum Expr {
    Col(String),
    Lit(Value),
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    Num(Box<Expr>, NumOp, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    IsNull(Box<Expr>),
    /// An opaque row function. `uses` lists the columns it reads; `None`
    /// means "unknown — assume all", which blocks pushdown/pruning past it.
    Udf {
        name: String,
        f: Arc<UdfFn>,
        uses: Option<Vec<String>>,
    },
}

impl std::fmt::Debug for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "col({c})"),
            Expr::Lit(v) => write!(f, "lit({v})"),
            Expr::Cmp(a, op, b) => write!(f, "({a:?} {op:?} {b:?})"),
            Expr::Num(a, op, b) => write!(f, "({a:?} {op:?} {b:?})"),
            Expr::And(a, b) => write!(f, "({a:?} AND {b:?})"),
            Expr::Or(a, b) => write!(f, "({a:?} OR {b:?})"),
            Expr::Not(a) => write!(f, "(NOT {a:?})"),
            Expr::IsNull(a) => write!(f, "({a:?} IS NULL)"),
            Expr::Udf { name, uses, .. } => write!(f, "udf({name}, uses={uses:?})"),
        }
    }
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Lit(v)
    }

    pub fn cmp(a: Expr, op: CmpOp, b: Expr) -> Expr {
        Expr::Cmp(Box::new(a), op, Box::new(b))
    }

    pub fn num(a: Expr, op: NumOp, b: Expr) -> Expr {
        Expr::Num(Box::new(a), op, Box::new(b))
    }

    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    #[allow(clippy::should_implement_trait)] // JSONiq's `not`, not std::ops::Not
    pub fn not(a: Expr) -> Expr {
        Expr::Not(Box::new(a))
    }

    pub fn is_null(a: Expr) -> Expr {
        Expr::IsNull(Box::new(a))
    }

    /// Builds a UDF expression with a declared column footprint.
    pub fn udf(
        name: impl Into<String>,
        uses: Option<Vec<String>>,
        f: impl Fn(&Schema, &[Value]) -> Value + Send + Sync + 'static,
    ) -> Expr {
        Expr::Udf { name: name.into(), f: Arc::new(f), uses }
    }

    /// The set of columns this expression reads; `None` if it contains a
    /// UDF with an undeclared footprint.
    pub fn uses(&self) -> Option<BTreeSet<String>> {
        fn walk(e: &Expr, acc: &mut BTreeSet<String>) -> bool {
            match e {
                Expr::Col(c) => {
                    acc.insert(c.clone());
                    true
                }
                Expr::Lit(_) => true,
                Expr::Cmp(a, _, b) | Expr::Num(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                    walk(a, acc) && walk(b, acc)
                }
                Expr::Not(a) | Expr::IsNull(a) => walk(a, acc),
                Expr::Udf { uses, .. } => match uses {
                    Some(cols) => {
                        acc.extend(cols.iter().cloned());
                        true
                    }
                    None => false,
                },
            }
        }
        let mut acc = BTreeSet::new();
        walk(self, &mut acc).then_some(acc)
    }

    /// True when the expression is a bare column reference to `name`.
    pub fn is_col(&self, name: &str) -> bool {
        matches!(self, Expr::Col(c) if c == name)
    }

    /// Replaces every column reference using `lookup`; used by the
    /// projection-fusion optimizer rule.
    pub fn substitute(&self, lookup: &dyn Fn(&str) -> Option<Expr>) -> Expr {
        match self {
            Expr::Col(c) => lookup(c).unwrap_or_else(|| self.clone()),
            Expr::Lit(_) | Expr::Udf { .. } => self.clone(),
            Expr::Cmp(a, op, b) => {
                Expr::Cmp(Box::new(a.substitute(lookup)), *op, Box::new(b.substitute(lookup)))
            }
            Expr::Num(a, op, b) => {
                Expr::Num(Box::new(a.substitute(lookup)), *op, Box::new(b.substitute(lookup)))
            }
            Expr::And(a, b) => {
                Expr::And(Box::new(a.substitute(lookup)), Box::new(b.substitute(lookup)))
            }
            Expr::Or(a, b) => {
                Expr::Or(Box::new(a.substitute(lookup)), Box::new(b.substitute(lookup)))
            }
            Expr::Not(a) => Expr::Not(Box::new(a.substitute(lookup))),
            Expr::IsNull(a) => Expr::IsNull(Box::new(a.substitute(lookup))),
        }
    }

    /// Resolves column names against `schema`, yielding an executable
    /// expression. Fails on unknown columns — the static half of the
    /// "errors caught before runtime" property SQL-in-strings lacks.
    pub fn bind(&self, schema: &Arc<Schema>) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Col(c) => BoundExpr::Col(schema.resolve(c)?),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Cmp(a, op, b) => {
                BoundExpr::Cmp(Box::new(a.bind(schema)?), *op, Box::new(b.bind(schema)?))
            }
            Expr::Num(a, op, b) => {
                BoundExpr::Num(Box::new(a.bind(schema)?), *op, Box::new(b.bind(schema)?))
            }
            Expr::And(a, b) => BoundExpr::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Or(a, b) => BoundExpr::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Not(a) => BoundExpr::Not(Box::new(a.bind(schema)?)),
            Expr::IsNull(a) => BoundExpr::IsNull(Box::new(a.bind(schema)?)),
            Expr::Udf { f, uses, .. } => {
                if let Some(cols) = uses {
                    for c in cols {
                        schema.resolve(c)?;
                    }
                }
                BoundExpr::Udf { f: Arc::clone(f), schema: Arc::clone(schema) }
            }
        })
    }
}

/// An expression with column references resolved to row indices.
#[derive(Clone)]
pub enum BoundExpr {
    Col(usize),
    Lit(Value),
    Cmp(Box<BoundExpr>, CmpOp, Box<BoundExpr>),
    Num(Box<BoundExpr>, NumOp, Box<BoundExpr>),
    And(Box<BoundExpr>, Box<BoundExpr>),
    Or(Box<BoundExpr>, Box<BoundExpr>),
    Not(Box<BoundExpr>),
    IsNull(Box<BoundExpr>),
    Udf { f: Arc<UdfFn>, schema: Arc<Schema> },
}

impl BoundExpr {
    /// Whether the tree contains an opaque row function. The fused columnar
    /// loop composes filter selections only for UDF-free predicates:
    /// built-in operators are pure and total on every value, so evaluating
    /// them over slots an earlier filter already dropped is harmless, while
    /// a UDF may only observe rows that logically reach it.
    pub fn has_udf(&self) -> bool {
        match self {
            BoundExpr::Col(_) | BoundExpr::Lit(_) => false,
            BoundExpr::Cmp(a, _, b)
            | BoundExpr::Num(a, _, b)
            | BoundExpr::And(a, b)
            | BoundExpr::Or(a, b) => a.has_udf() || b.has_udf(),
            BoundExpr::Not(a) | BoundExpr::IsNull(a) => a.has_udf(),
            BoundExpr::Udf { .. } => true,
        }
    }

    /// Evaluates against one row. NULL propagates SQL-style.
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            BoundExpr::Col(i) => row[*i].clone(),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Cmp(a, op, b) => eval_cmp(&a.eval(row), *op, &b.eval(row)),
            BoundExpr::Num(a, op, b) => eval_num(&a.eval(row), *op, &b.eval(row)),
            BoundExpr::And(a, b) => match (truth(&a.eval(row)), truth(&b.eval(row))) {
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            },
            BoundExpr::Or(a, b) => match (truth(&a.eval(row)), truth(&b.eval(row))) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            },
            BoundExpr::Not(a) => match truth(&a.eval(row)) {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            BoundExpr::IsNull(a) => Value::Bool(a.eval(row).is_null()),
            BoundExpr::Udf { f, schema } => f(schema, row),
        }
    }

    /// Evaluates as a filter predicate: only a definite `TRUE` keeps the row.
    pub fn eval_predicate(&self, row: &[Value]) -> bool {
        truth(&self.eval(row)) == Some(true)
    }
}

/// SQL truth value: `Some(b)` only for booleans, everything else is
/// "unknown" (the columnar kernels share this with the row interpreter).
pub(crate) fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

pub(crate) fn eval_cmp(a: &Value, op: CmpOp, b: &Value) -> Value {
    if a.is_null() || b.is_null() {
        return Value::Null;
    }
    let ord = match (a, b) {
        (Value::I64(x), Value::I64(y)) => x.partial_cmp(y),
        (Value::F64(x), Value::F64(y)) => x.partial_cmp(y),
        (Value::I64(x), Value::F64(y)) => (*x as f64).partial_cmp(y),
        (Value::F64(x), Value::I64(y)) => x.partial_cmp(&(*y as f64)),
        (Value::Str(x), Value::Str(y)) => Some(x.as_ref().cmp(y.as_ref())),
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
        // Structural equality only for compound values.
        (Value::List(_), Value::List(_)) | (Value::Bin(_), Value::Bin(_)) => {
            return match op {
                CmpOp::Eq => Value::Bool(a == b),
                CmpOp::Ne => Value::Bool(a != b),
                _ => Value::Null,
            };
        }
        // Incompatible types: equality is false, ordering undefined.
        _ => {
            return match op {
                CmpOp::Eq => Value::Bool(false),
                CmpOp::Ne => Value::Bool(true),
                _ => Value::Null,
            };
        }
    };
    match ord {
        None => Value::Null, // NaN comparisons
        Some(o) => Value::Bool(match op {
            CmpOp::Eq => o == Ordering::Equal,
            CmpOp::Ne => o != Ordering::Equal,
            CmpOp::Lt => o == Ordering::Less,
            CmpOp::Le => o != Ordering::Greater,
            CmpOp::Gt => o == Ordering::Greater,
            CmpOp::Ge => o != Ordering::Less,
        }),
    }
}

pub(crate) fn eval_num(a: &Value, op: NumOp, b: &Value) -> Value {
    if a.is_null() || b.is_null() {
        return Value::Null;
    }
    match (a, b) {
        (Value::I64(x), Value::I64(y)) if op != NumOp::Div => {
            let r = match op {
                NumOp::Add => x.checked_add(*y),
                NumOp::Sub => x.checked_sub(*y),
                NumOp::Mul => x.checked_mul(*y),
                NumOp::Mod => {
                    if *y == 0 {
                        None
                    } else {
                        x.checked_rem(*y)
                    }
                }
                NumOp::Div => unreachable!(),
            };
            r.map(Value::I64).unwrap_or(Value::Null)
        }
        _ => {
            let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) else {
                return Value::Null;
            };
            let r = match op {
                NumOp::Add => x + y,
                NumOp::Sub => x - y,
                NumOp::Mul => x * y,
                NumOp::Div => x / y,
                NumOp::Mod => x % y,
            };
            Value::F64(r)
        }
    }
}

/// A total, type-bucketed order over [`Value`], used for sorting:
/// `NULL < booleans < numbers < strings < binaries < lists`. Numbers
/// compare numerically across `I64`/`F64` (NaN greatest); when an `I64`
/// and an `F64` are numerically equal after widening, the `I64` orders
/// first. That tiebreak makes the relation a genuine total order (plain
/// `total_cmp` after an `as f64` widening is not transitive once |i64|
/// exceeds 2^53) and is exactly what the normalized-key byte encoding in
/// [`batch`](super::batch) realizes: the comparison key is the triple
/// (value as f64 under `total_cmp`, type rank I64 < F64, i64 payload).
pub fn value_cmp(a: &Value, b: &Value) -> Ordering {
    fn bucket(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::I64(_) | Value::F64(_) => 2,
            Value::Str(_) => 3,
            Value::Bin(_) => 4,
            Value::List(_) => 5,
        }
    }
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::I64(x), Value::I64(y)) => x.cmp(y),
        (Value::I64(x), Value::F64(y)) => (*x as f64).total_cmp(y).then(Ordering::Less),
        (Value::F64(x), Value::I64(y)) => x.total_cmp(&(*y as f64)).then(Ordering::Greater),
        (Value::F64(x), Value::F64(y)) => x.total_cmp(y),
        (Value::Str(x), Value::Str(y)) => x.as_ref().cmp(y.as_ref()),
        (Value::Bin(x), Value::Bin(y)) => x.as_ref().cmp(y.as_ref()),
        (Value::List(x), Value::List(y)) => {
            for (xa, ya) in x.iter().zip(y.iter()) {
                let o = value_cmp(xa, ya);
                if o != Ordering::Equal {
                    return o;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => bucket(a).cmp(&bucket(b)),
    }
}

/// Sort direction plus null placement for one sort key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortDir {
    pub ascending: bool,
    pub nulls_last: bool,
}

impl SortDir {
    /// Ascending, nulls first (Spark's `ASC` default).
    pub fn asc() -> SortDir {
        SortDir { ascending: true, nulls_last: false }
    }

    /// Descending, nulls last (Spark's `DESC` default).
    pub fn desc() -> SortDir {
        SortDir { ascending: false, nulls_last: true }
    }

    pub fn with_nulls_last(mut self, nulls_last: bool) -> SortDir {
        self.nulls_last = nulls_last;
        self
    }
}

/// One sort-key cell: a value plus its direction, ordered so that a plain
/// ascending sort of `Vec<SortKey>` realizes the requested multi-key order.
#[derive(Clone)]
pub struct SortKey {
    pub value: Value,
    pub dir: SortDir,
}

impl SortKey {
    pub fn new(value: Value, dir: SortDir) -> SortKey {
        SortKey { value, dir }
    }
}

impl PartialEq for SortKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for SortKey {}

impl PartialOrd for SortKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SortKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Null placement is applied before direction (NULLS FIRST/LAST is
        // absolute, not flipped by DESC).
        match (self.value.is_null(), other.value.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if self.dir.nulls_last {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, true) => {
                if self.dir.nulls_last {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, false) => {
                let o = value_cmp(&self.value, &other.value);
                if self.dir.ascending {
                    o
                } else {
                    o.reverse()
                }
            }
        }
    }
}

/// A grouping key cell: hashable/equatable by exact representation (floats
/// by bit pattern), the contract a shuffle key needs.
#[derive(Clone, Debug)]
pub struct KeyValue(pub Value);

impl PartialEq for KeyValue {
    fn eq(&self, other: &Self) -> bool {
        key_eq(&self.0, &other.0)
    }
}
impl Eq for KeyValue {}

fn key_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::I64(x), Value::I64(y)) => x == y,
        (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bin(x), Value::Bin(y)) => x == y,
        (Value::List(x), Value::List(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(a, b)| key_eq(a, b))
        }
        _ => false,
    }
}

impl Hash for KeyValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        fn h<H: Hasher>(v: &Value, state: &mut H) {
            match v {
                Value::Null => state.write_u8(0),
                Value::Bool(b) => {
                    state.write_u8(1);
                    state.write_u8(*b as u8);
                }
                Value::I64(x) => {
                    state.write_u8(2);
                    state.write_u64(*x as u64);
                }
                Value::F64(x) => {
                    state.write_u8(3);
                    state.write_u64(x.to_bits());
                }
                Value::Str(s) => {
                    state.write_u8(4);
                    state.write(s.as_bytes());
                    state.write_u8(0xFF);
                }
                Value::Bin(b) => {
                    state.write_u8(5);
                    state.write(b);
                    state.write_u8(0xFF);
                }
                Value::List(l) => {
                    state.write_u8(6);
                    state.write_u64(l.len() as u64);
                    for v in l.iter() {
                        h(v, state);
                    }
                }
            }
        }
        h(&self.0, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataframe::{DataType, Field};

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            Field::new("a", DataType::I64),
            Field::new("b", DataType::Str),
            Field::new("c", DataType::F64),
        ])
    }

    fn row() -> Vec<Value> {
        vec![Value::I64(10), Value::str("hi"), Value::F64(2.5)]
    }

    #[test]
    fn bind_rejects_unknown_columns() {
        assert!(Expr::col("zzz").bind(&schema()).is_err());
        assert!(Expr::col("a").bind(&schema()).is_ok());
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let e = Expr::cmp(Expr::col("a"), CmpOp::Gt, Expr::lit(Value::I64(5))).bind(&s).unwrap();
        assert_eq!(e.eval(&row()), Value::Bool(true));
        let e = Expr::cmp(Expr::col("a"), CmpOp::Lt, Expr::col("c")).bind(&s).unwrap();
        assert_eq!(e.eval(&row()), Value::Bool(false));
        // Cross-type equality is false, ordering NULL.
        let e = Expr::cmp(Expr::col("a"), CmpOp::Eq, Expr::col("b")).bind(&s).unwrap();
        assert_eq!(e.eval(&row()), Value::Bool(false));
        let e = Expr::cmp(Expr::col("a"), CmpOp::Lt, Expr::col("b")).bind(&s).unwrap();
        assert_eq!(e.eval(&row()), Value::Null);
    }

    #[test]
    fn null_propagation_and_three_valued_logic() {
        let s = schema();
        let null_row = vec![Value::Null, Value::str("x"), Value::F64(1.0)];
        let cmp = Expr::cmp(Expr::col("a"), CmpOp::Eq, Expr::lit(Value::I64(1))).bind(&s).unwrap();
        assert_eq!(cmp.eval(&null_row), Value::Null);
        assert!(!cmp.eval_predicate(&null_row));

        // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE.
        let f = Expr::lit(Value::Bool(false));
        let t = Expr::lit(Value::Bool(true));
        let n = Expr::lit(Value::Null);
        assert_eq!(Expr::and(n.clone(), f).bind(&s).unwrap().eval(&row()), Value::Bool(false));
        assert_eq!(Expr::or(n.clone(), t).bind(&s).unwrap().eval(&row()), Value::Bool(true));
        assert_eq!(Expr::not(n.clone()).bind(&s).unwrap().eval(&row()), Value::Null);
        assert_eq!(Expr::is_null(n).bind(&s).unwrap().eval(&row()), Value::Bool(true));
    }

    #[test]
    fn arithmetic() {
        let s = schema();
        let e = Expr::num(Expr::col("a"), NumOp::Add, Expr::col("c")).bind(&s).unwrap();
        assert_eq!(e.eval(&row()), Value::F64(12.5));
        let e = Expr::num(Expr::col("a"), NumOp::Mul, Expr::lit(Value::I64(3))).bind(&s).unwrap();
        assert_eq!(e.eval(&row()), Value::I64(30));
        // Integer division yields a double.
        let e = Expr::num(Expr::col("a"), NumOp::Div, Expr::lit(Value::I64(4))).bind(&s).unwrap();
        assert_eq!(e.eval(&row()), Value::F64(2.5));
        // Overflow becomes NULL rather than panicking.
        let e = Expr::num(Expr::lit(Value::I64(i64::MAX)), NumOp::Add, Expr::lit(Value::I64(1)))
            .bind(&s)
            .unwrap();
        assert_eq!(e.eval(&row()), Value::Null);
        // Mod by zero becomes NULL.
        let e = Expr::num(Expr::lit(Value::I64(1)), NumOp::Mod, Expr::lit(Value::I64(0)))
            .bind(&s)
            .unwrap();
        assert_eq!(e.eval(&row()), Value::Null);
    }

    #[test]
    fn udf_and_uses() {
        let s = schema();
        let e = Expr::udf("double_a", Some(vec!["a".into()]), |sch, row| {
            let i = sch.index_of("a").expect("a exists");
            match row[i] {
                Value::I64(v) => Value::I64(v * 2),
                _ => Value::Null,
            }
        });
        assert_eq!(e.uses().unwrap().len(), 1);
        assert_eq!(e.bind(&s).unwrap().eval(&row()), Value::I64(20));

        let opaque = Expr::udf("mystery", None, |_, _| Value::Null);
        assert!(opaque.uses().is_none());
        let composite = Expr::and(Expr::col("a"), opaque);
        assert!(composite.uses().is_none());
    }

    #[test]
    fn sort_key_ordering() {
        let asc = |v: Value| SortKey::new(v, SortDir::asc());
        assert!(asc(Value::Null) < asc(Value::I64(-100)));
        assert!(asc(Value::I64(1)) < asc(Value::F64(1.5)));
        assert!(asc(Value::F64(2.0)) < asc(Value::str("a")));
        assert!(asc(Value::str("a")) < asc(Value::str("b")));

        let desc = |v: Value| SortKey::new(v, SortDir::desc());
        assert!(desc(Value::I64(5)) < desc(Value::I64(3)));
        // Descending default puts nulls last.
        assert!(desc(Value::I64(5)) < desc(Value::Null));

        let desc_nf = |v: Value| SortKey::new(v, SortDir::desc().with_nulls_last(false));
        assert!(desc_nf(Value::Null) < desc_nf(Value::I64(5)));
    }

    #[test]
    fn key_value_hash_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(KeyValue(Value::I64(1)));
        set.insert(KeyValue(Value::F64(1.0)));
        set.insert(KeyValue(Value::str("1")));
        set.insert(KeyValue(Value::Null));
        set.insert(KeyValue(Value::I64(1)));
        // I64(1), F64(1.0) and "1" are all distinct grouping keys.
        assert_eq!(set.len(), 4);
        assert_eq!(KeyValue(Value::F64(f64::NAN)), KeyValue(Value::F64(f64::NAN)));
    }

    #[test]
    fn substitution() {
        let outer = Expr::cmp(Expr::col("x"), CmpOp::Eq, Expr::col("y"));
        let sub = outer.substitute(&|name| {
            (name == "x").then(|| Expr::num(Expr::col("a"), NumOp::Add, Expr::lit(Value::I64(1))))
        });
        let used = sub.uses().unwrap();
        assert!(used.contains("a") && used.contains("y") && !used.contains("x"));
    }
}
