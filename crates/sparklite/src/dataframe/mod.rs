//! DataFrames: schema-ful tables of native-typed values with a logical plan
//! and a rule-based optimizer — sparklite's stand-in for Spark SQL.
//!
//! The FLWOR→DataFrame mapping of the paper (§4.4–§4.10) drives the
//! operator set: extended projection with UDFs (`for`/`let`), `EXPLODE`
//! (`for`), filter (`where`), `GROUP BY` with `COLLECT_LIST`/`COUNT`/`FIRST`
//! (`group by`), range-partitioned `ORDER BY` (`order by`), and a parallel
//! zip-with-index (`count`). Rows are row-major vectors of [`Value`]; the
//! performance property the paper's key encoding exploits — native machine
//! comparisons instead of boxed-item comparisons — holds either way.
//!
//! Execution compiles the optimized logical plan onto the RDD substrate, so
//! DataFrames inherit its parallel scheduling, shuffles and metrics.

pub mod batch;
mod expr;
mod plan;
pub mod properties;
mod rowcodec;
pub mod rules;

pub use expr::{BoundExpr, CmpOp, Expr, KeyValue, NumOp, SortDir, SortKey};
pub use plan::{fused_pipeline_ops, optimize, Agg, LogicalPlan, NamedExpr};
pub use properties::{PlanProperties, Preserved};
pub use rowcodec::RowCodec;
pub use rules::{OptimizeTrace, Optimizer, RewriteRule};

use crate::cache::StorageLevel;
use crate::context::Core;
use crate::error::{Result, SparkliteError};
use crate::rdd::Rdd;
use crate::SparkliteContext;
use std::fmt;
use std::sync::Arc;

/// One cell of a DataFrame.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    F64(f64),
    Str(Arc<str>),
    /// Opaque bytes — engines store serialized payloads here (Rumble keeps
    /// serialized item sequences in `Bin` columns, like Kryo-encoded
    /// objects in Spark).
    Bin(Arc<[u8]>),
    List(Arc<Vec<Value>>),
}

impl Value {
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(items))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::I64(_) => Some(DataType::I64),
            Value::F64(_) => Some(DataType::F64),
            Value::Str(_) => Some(DataType::Str),
            Value::Bin(_) => Some(DataType::Bin),
            Value::List(_) => Some(DataType::List),
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&Arc<Vec<Value>>> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    pub fn as_bin(&self) -> Option<&Arc<[u8]>> {
        match self {
            Value::Bin(b) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bin(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    Bool,
    I64,
    F64,
    Str,
    Bin,
    List,
    /// Unconstrained — used for UDF outputs whose type varies by row.
    Any,
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field { name: name.into(), dtype }
    }
}

/// An ordered list of fields with by-name lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Arc<Schema> {
        Arc::new(Schema { fields })
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// `index_of` that errors with a helpful message.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| {
            let known: Vec<&str> = self.fields.iter().map(|f| f.name.as_str()).collect();
            SparkliteError::Schema(format!("unknown column '{name}' (have: {known:?})"))
        })
    }
}

/// A row: one value per schema field, in field order.
pub type Row = Vec<Value>;

/// The user-facing DataFrame handle: a logical plan plus the driver core.
/// All transformations are lazy; actions compile the optimized plan onto
/// the RDD substrate.
#[derive(Clone)]
pub struct DataFrame {
    core: Arc<Core>,
    plan: Arc<LogicalPlan>,
}

impl DataFrame {
    /// Builds a DataFrame from driver-local rows.
    pub fn from_rows(
        ctx: &SparkliteContext,
        schema: Arc<Schema>,
        rows: Vec<Row>,
        num_partitions: usize,
    ) -> Result<DataFrame> {
        for (i, r) in rows.iter().enumerate() {
            if r.len() != schema.len() {
                return Err(SparkliteError::Schema(format!(
                    "row {i} has {} values, schema has {} fields",
                    r.len(),
                    schema.len()
                )));
            }
        }
        let rdd = ctx.parallelize(rows, num_partitions);
        Ok(Self::from_rdd(schema, &rdd))
    }

    /// Wraps an existing RDD of rows. The caller guarantees rows match the
    /// schema (this is the hot path used by engines; use [`from_rows`] for
    /// checked construction).
    ///
    /// [`from_rows`]: DataFrame::from_rows
    pub fn from_rdd(schema: Arc<Schema>, rows: &Rdd<Row>) -> DataFrame {
        DataFrame {
            core: Arc::clone(rows.core()),
            plan: Arc::new(LogicalPlan::FromRdd { schema, rows: rows.clone() }),
        }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        self.plan.schema()
    }

    pub fn plan(&self) -> &Arc<LogicalPlan> {
        &self.plan
    }

    /// Rebinds this frame to a replacement logical plan over the same driver
    /// core. The caller is responsible for the plan being well-formed (it is
    /// still `validate`d before compilation) — this is how the equivalence
    /// fuzzer executes individually rewritten plans.
    pub fn with_plan(&self, plan: Arc<LogicalPlan>) -> DataFrame {
        DataFrame { core: Arc::clone(&self.core), plan }
    }

    fn derive(&self, plan: LogicalPlan) -> DataFrame {
        DataFrame { core: Arc::clone(&self.core), plan: Arc::new(plan) }
    }

    // ---- transformations ----

    /// Full projection: the output schema is exactly `exprs`.
    pub fn select(&self, exprs: Vec<NamedExpr>) -> Result<DataFrame> {
        let plan = LogicalPlan::project(Arc::clone(&self.plan), exprs)?;
        Ok(self.derive(plan))
    }

    /// Extended projection: keeps every existing column and appends one
    /// computed column (the paper's `SELECT a, b, c, EXPR(...) AS d`).
    pub fn with_column(
        &self,
        name: impl Into<String>,
        expr: Expr,
        dtype: DataType,
    ) -> Result<DataFrame> {
        let name = name.into();
        // Redeclaring an existing column replaces it in place; a new name
        // is appended.
        let mut replaced = false;
        let mut exprs: Vec<NamedExpr> = self
            .schema()
            .fields()
            .iter()
            .map(|f| {
                if f.name == name {
                    replaced = true;
                    NamedExpr { name: name.clone(), expr: expr.clone(), dtype }
                } else {
                    NamedExpr::passthrough(&f.name, f.dtype)
                }
            })
            .collect();
        if !replaced {
            exprs.push(NamedExpr { name, expr, dtype });
        }
        self.select(exprs)
    }

    /// Drops columns by name (absent names are ignored).
    pub fn drop_columns(&self, names: &[&str]) -> Result<DataFrame> {
        let exprs: Vec<NamedExpr> = self
            .schema()
            .fields()
            .iter()
            .filter(|f| !names.contains(&f.name.as_str()))
            .map(|f| NamedExpr::passthrough(&f.name, f.dtype))
            .collect();
        self.select(exprs)
    }

    /// Keeps rows where `predicate` evaluates to `TRUE` (NULL drops the
    /// row, like SQL).
    pub fn filter(&self, predicate: Expr) -> Result<DataFrame> {
        let plan = LogicalPlan::filter(Arc::clone(&self.plan), predicate)?;
        Ok(self.derive(plan))
    }

    /// Spark SQL's `EXPLODE`: replaces the list column `col` with one row
    /// per element, duplicating the other columns. Empty lists and NULLs
    /// produce no rows.
    pub fn explode(
        &self,
        col: &str,
        as_name: impl Into<String>,
        dtype: DataType,
    ) -> Result<DataFrame> {
        let plan = LogicalPlan::explode(Arc::clone(&self.plan), col, as_name.into(), dtype)?;
        Ok(self.derive(plan))
    }

    /// Groups by the named key columns and computes aggregates. The output
    /// schema is the key columns followed by the aggregate columns.
    pub fn group_by(&self, keys: &[&str], aggs: Vec<(Agg, String)>) -> Result<DataFrame> {
        let plan = LogicalPlan::group_by(
            Arc::clone(&self.plan),
            keys.iter().map(|s| s.to_string()).collect(),
            aggs,
        )?;
        Ok(self.derive(plan))
    }

    /// Globally sorts by the given `(column, direction)` keys.
    pub fn order_by(&self, keys: Vec<(String, SortDir)>) -> Result<DataFrame> {
        let plan = LogicalPlan::order_by(Arc::clone(&self.plan), keys)?;
        Ok(self.derive(plan))
    }

    /// Appends an `I64` column numbering rows globally from `start`,
    /// without funnelling data through one node — the paper's `count`
    /// clause trick (§4.9).
    pub fn zip_with_index(&self, name: impl Into<String>, start: i64) -> Result<DataFrame> {
        let plan = LogicalPlan::zip_with_index(Arc::clone(&self.plan), name.into(), start)?;
        Ok(self.derive(plan))
    }

    /// Keeps at most the first `n` rows.
    pub fn limit(&self, n: usize) -> DataFrame {
        self.derive(LogicalPlan::Limit { input: Arc::clone(&self.plan), n })
    }

    /// Persists the frame at [`StorageLevel::MemoryDeserialized`] so that
    /// several downstream passes (e.g. a type discovery pass followed by a
    /// sort) do not recompute the pipeline — the role Spark's `.cache()`
    /// plays. Unlike the historical driver-funnel implementation, rows stay
    /// on the executors: partitions land in the [`CacheManager`] where the
    /// task that first computes them runs.
    ///
    /// [`CacheManager`]: crate::cache::CacheManager
    pub fn cache(&self) -> Result<DataFrame> {
        self.persist(StorageLevel::MemoryDeserialized)
    }

    /// Persists the frame at an explicit storage level and eagerly
    /// populates the cache (one task per partition; no rows reach the
    /// driver). `MemorySerialized` stores partitions as compact
    /// [`RowCodec`] bytes, trading decode CPU on re-read for a smaller
    /// footprint under the cache byte budget.
    pub fn persist(&self, level: StorageLevel) -> Result<DataFrame> {
        let rdd = self.to_rdd()?;
        let persisted = match level {
            StorageLevel::MemoryDeserialized => rdd.persist(level),
            StorageLevel::MemorySerialized => rdd.persist_with_codec(level, Arc::new(RowCodec)),
        };
        persisted.foreach(|_| {})?;
        Ok(DataFrame::from_rdd(Arc::clone(self.schema()), &persisted))
    }

    /// Drops this frame's cached partitions (a no-op unless the frame came
    /// from [`cache`]/[`persist`]).
    ///
    /// [`cache`]: DataFrame::cache
    /// [`persist`]: DataFrame::persist
    pub fn unpersist(&self) {
        if let LogicalPlan::FromRdd { rows, .. } = self.plan.as_ref() {
            rows.unpersist();
        }
    }

    // ---- actions ----

    /// Compiles the optimized plan to an RDD of rows. Optimization honors
    /// the context's [`crate::conf::OptimizerConf`] (global and per-rule
    /// disables) and reports every rule firing to the event bus as an
    /// [`crate::events::Event::OptimizerRuleFired`].
    pub fn to_rdd(&self) -> Result<Rdd<Row>> {
        let opt_conf = &self.core.conf.optimizer;
        let optimized = if opt_conf.enabled {
            let engine = Optimizer::standard().without_rules(&opt_conf.disabled_rules);
            let (optimized, trace) = engine.run(Arc::clone(&self.plan));
            for fire in &trace.fires {
                self.core.events.emit(crate::events::Event::OptimizerRuleFired {
                    rule: fire.rule,
                    stage: fire.pass,
                });
            }
            for v in &trace.violations {
                eprintln!(
                    "sparklite optimizer: rejected {} at pass {}: {}",
                    v.rule, v.pass, v.detail
                );
            }
            optimized
        } else {
            Arc::clone(&self.plan)
        };
        plan::compile(&self.core, &optimized)
    }

    /// Whether compiling this frame (under the context's optimizer and
    /// execution configuration) produces at least one fused multi-operator
    /// columnar pipeline segment. Always `false` under
    /// [`crate::conf::ExecConf::row_major`]. This is the signal behind
    /// EXPLAIN ANALYZE's `dataframe (fused)` mode hint, so it mirrors
    /// [`to_rdd`] exactly — including running the optimizer (silently — no
    /// rule-fire events are emitted for this read-only preview).
    ///
    /// [`to_rdd`]: DataFrame::to_rdd
    pub fn fused_pipeline(&self) -> bool {
        if self.core.conf.exec.row_major {
            return false;
        }
        let opt_conf = &self.core.conf.optimizer;
        let plan = if opt_conf.enabled {
            Optimizer::standard()
                .without_rules(&opt_conf.disabled_rules)
                .run(Arc::clone(&self.plan))
                .0
        } else {
            Arc::clone(&self.plan)
        };
        fused_pipeline_ops(&plan) >= 2
    }

    pub fn collect_rows(&self) -> Result<Vec<Row>> {
        self.to_rdd()?.collect()
    }

    pub fn count(&self) -> Result<u64> {
        self.to_rdd()?.count()
    }

    pub fn take(&self, n: usize) -> Result<Vec<Row>> {
        self.to_rdd()?.take(n)
    }

    /// Renders up to `n` rows as an aligned text table (for examples and
    /// the shell).
    pub fn show(&self, n: usize) -> Result<String> {
        let rows = self.take(n)?;
        let schema = self.schema();
        let mut widths: Vec<usize> = schema.fields().iter().map(|f| f.name.len()).collect();
        let rendered: Vec<Vec<String>> =
            rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect::<Vec<_>>()).collect();
        for r in &rendered {
            for (i, cell) in r.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, f) in schema.fields().iter().enumerate() {
            out.push_str(&format!("| {:w$} ", f.name, w = widths[i]));
        }
        out.push_str("|\n");
        for (i, _) in schema.fields().iter().enumerate() {
            out.push_str(&format!("|-{:-<w$}-", "", w = widths[i]));
        }
        out.push_str("|\n");
        for r in &rendered {
            for (i, cell) in r.iter().enumerate() {
                out.push_str(&format!("| {:w$} ", cell, w = widths[i]));
            }
            out.push_str("|\n");
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SparkliteConf, SparkliteContext};

    fn sc() -> SparkliteContext {
        SparkliteContext::new(SparkliteConf::default().with_executors(4))
    }

    fn people(ctx: &SparkliteContext) -> DataFrame {
        let schema = Schema::new(vec![
            Field::new("name", DataType::Str),
            Field::new("age", DataType::I64),
            Field::new("tags", DataType::List),
        ]);
        let rows: Vec<Row> = vec![
            vec![
                Value::str("ana"),
                Value::I64(34),
                Value::list(vec![Value::str("a"), Value::str("b")]),
            ],
            vec![Value::str("bob"), Value::I64(28), Value::list(vec![])],
            vec![Value::str("cyd"), Value::I64(41), Value::list(vec![Value::str("c")])],
            vec![Value::str("dee"), Value::Null, Value::Null],
        ];
        DataFrame::from_rows(ctx, schema, rows, 2).unwrap()
    }

    #[test]
    fn schema_validation_on_from_rows() {
        let ctx = sc();
        let schema = Schema::new(vec![Field::new("a", DataType::I64)]);
        let err = DataFrame::from_rows(&ctx, schema, vec![vec![Value::I64(1), Value::I64(2)]], 1);
        assert!(err.is_err());
    }

    #[test]
    fn filter_and_project() {
        let ctx = sc();
        let df = people(&ctx);
        let adults = df
            .filter(Expr::cmp(Expr::col("age"), CmpOp::Ge, Expr::lit(Value::I64(30))))
            .unwrap()
            .select(vec![NamedExpr::passthrough("name", DataType::Str)])
            .unwrap();
        let mut names: Vec<String> = adults
            .collect_rows()
            .unwrap()
            .into_iter()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        names.sort();
        // NULL age drops the row.
        assert_eq!(names, vec!["ana", "cyd"]);
    }

    #[test]
    fn with_column_and_redeclaration() {
        let ctx = sc();
        let df = people(&ctx);
        let df2 = df
            .with_column(
                "age",
                Expr::num(Expr::col("age"), NumOp::Add, Expr::lit(Value::I64(1))),
                DataType::I64,
            )
            .unwrap();
        // Redeclaring keeps a single column of that name.
        assert_eq!(df2.schema().len(), 3);
        let rows = df2.collect_rows().unwrap();
        let ana = rows.iter().find(|r| r[0].as_str() == Some("ana")).unwrap();
        assert_eq!(ana[1], Value::I64(35));
        let dee = rows.iter().find(|r| r[0].as_str() == Some("dee")).unwrap();
        assert_eq!(dee[1], Value::Null, "NULL + 1 stays NULL");
    }

    #[test]
    fn explode_replicates_rows() {
        let ctx = sc();
        let df = people(&ctx).explode("tags", "tag", DataType::Str).unwrap();
        let mut pairs: Vec<(String, String)> = df
            .collect_rows()
            .unwrap()
            .into_iter()
            .map(|r| {
                let name_idx = df.schema().index_of("name").unwrap();
                let tag_idx = df.schema().index_of("tag").unwrap();
                (
                    r[name_idx].as_str().unwrap().to_string(),
                    r[tag_idx].as_str().unwrap().to_string(),
                )
            })
            .collect();
        pairs.sort();
        // bob (empty list) and dee (NULL) disappear.
        assert_eq!(
            pairs,
            vec![
                ("ana".to_string(), "a".to_string()),
                ("ana".to_string(), "b".to_string()),
                ("cyd".to_string(), "c".to_string())
            ]
        );
    }

    #[test]
    fn group_by_counts_and_collects() {
        let ctx = sc();
        let schema =
            Schema::new(vec![Field::new("k", DataType::Str), Field::new("v", DataType::I64)]);
        let rows: Vec<Row> =
            (0..100).map(|i| vec![Value::str(format!("k{}", i % 3)), Value::I64(i)]).collect();
        let df = DataFrame::from_rows(&ctx, schema, rows, 5).unwrap();
        let g = df
            .group_by(
                &["k"],
                vec![
                    (Agg::Count, "n".to_string()),
                    (Agg::Sum("v".to_string()), "total".to_string()),
                    (Agg::CollectList("v".to_string()), "all".to_string()),
                ],
            )
            .unwrap();
        let mut rows = g.collect_rows().unwrap();
        rows.sort_by_key(|r| r[0].as_str().unwrap().to_string());
        assert_eq!(rows.len(), 3);
        let k0 = &rows[0];
        assert_eq!(k0[1], Value::I64(34)); // 0,3,...,99 → 34 values
        let list_len = k0[3].as_list().unwrap().len();
        assert_eq!(list_len, 34);
        let total: i64 = (0..100).filter(|i| i % 3 == 0).sum();
        assert_eq!(k0[2], Value::I64(total));
    }

    #[test]
    fn order_by_multiple_keys() {
        let ctx = sc();
        let schema =
            Schema::new(vec![Field::new("a", DataType::I64), Field::new("b", DataType::Str)]);
        let rows: Vec<Row> = vec![
            vec![Value::I64(2), Value::str("x")],
            vec![Value::I64(1), Value::str("z")],
            vec![Value::I64(1), Value::str("a")],
            vec![Value::Null, Value::str("n")],
            vec![Value::I64(2), Value::str("a")],
        ];
        let df = DataFrame::from_rows(&ctx, schema, rows, 3).unwrap();
        let sorted = df
            .order_by(vec![("a".to_string(), SortDir::asc()), ("b".to_string(), SortDir::desc())])
            .unwrap()
            .collect_rows()
            .unwrap();
        // NULL sorts first (nulls-first default), then (1,z),(1,a),(2,x),(2,a).
        assert_eq!(sorted[0][0], Value::Null);
        assert_eq!(sorted[1], vec![Value::I64(1), Value::str("z")]);
        assert_eq!(sorted[2], vec![Value::I64(1), Value::str("a")]);
        assert_eq!(sorted[3], vec![Value::I64(2), Value::str("x")]);
        assert_eq!(sorted[4], vec![Value::I64(2), Value::str("a")]);
    }

    #[test]
    fn zip_with_index_numbers_rows() {
        let ctx = sc();
        let schema = Schema::new(vec![Field::new("v", DataType::I64)]);
        let rows: Vec<Row> = (0..50).map(|i| vec![Value::I64(i)]).collect();
        let df = DataFrame::from_rows(&ctx, schema, rows, 7).unwrap();
        let out = df.zip_with_index("idx", 1).unwrap().collect_rows().unwrap();
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r[1], Value::I64(i as i64 + 1));
        }
    }

    #[test]
    fn limit_and_take() {
        let ctx = sc();
        let schema = Schema::new(vec![Field::new("v", DataType::I64)]);
        let rows: Vec<Row> = (0..100).map(|i| vec![Value::I64(i)]).collect();
        let df = DataFrame::from_rows(&ctx, schema, rows, 4).unwrap();
        assert_eq!(df.limit(7).count().unwrap(), 7);
        assert_eq!(df.take(3).unwrap().len(), 3);
    }

    #[test]
    fn show_renders_table() {
        let ctx = sc();
        let df = people(&ctx);
        let s = df.show(10).unwrap();
        assert!(s.contains("name"));
        assert!(s.contains("ana"));
        assert!(s.contains("NULL"));
    }

    #[test]
    fn unknown_column_errors() {
        let ctx = sc();
        let df = people(&ctx);
        assert!(df.filter(Expr::col("nope")).is_err());
        assert!(df.order_by(vec![("nope".into(), SortDir::asc())]).is_err());
        assert!(df.group_by(&["nope"], vec![(Agg::Count, "n".into())]).is_err());
        assert!(df.explode("nope", "x", DataType::Str).is_err());
    }
}
