//! The named rewrite-rule registry and the verified optimizer engine.
//!
//! Every rewrite the optimizer can perform is a [`RewriteRule`] with a
//! stable `RBLO####` id, a one-line contract, and a declaration of which
//! [`PlanProperties`] it preserves. The engine applies rules bottom-up to a
//! bounded fixpoint and re-derives the plan properties after *every
//! individual firing*: a rule that breaks its own declaration is a hard
//! error in debug builds and a rejected rewrite (recorded as a
//! [`PropertyViolation`]) in release builds. The equivalence fuzzer in
//! `tests/rule_fuzz.rs` additionally executes before/after plans per rule
//! per site, and its mutation mode proves the checker actually bites.

use super::expr::Expr;
use super::plan::LogicalPlan;
use super::properties::{check_preserved, derive, Preserved};
use super::{Field, NamedExpr, Schema, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One named, verified plan rewrite. Implementations must be pure: `apply`
/// either returns the rewritten subtree or `None` when the rule does not
/// match at this node — never a partially-applied plan.
pub trait RewriteRule: Send + Sync {
    /// Stable diagnostic id (`RBLO0001`…), documented in
    /// `rumble_core::semantics::CODE_DOCS` and explainable from the shell.
    fn id(&self) -> &'static str;
    /// Short human name, used in traces and golden tests.
    fn name(&self) -> &'static str;
    /// One-line contract: what the rule does and when it fires.
    fn description(&self) -> &'static str;
    /// Which plan properties the rule promises to preserve.
    fn preserves(&self) -> Preserved {
        Preserved::ALL
    }
    /// Whether the rule participates in the fixpoint loop or runs once as a
    /// whole-plan finalization pass (column pruning).
    fn phase(&self) -> RulePhase {
        RulePhase::Fixpoint
    }
    /// Attempts the rewrite with `plan` as the subtree root.
    fn apply(&self, plan: &Arc<LogicalPlan>) -> Option<Arc<LogicalPlan>>;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RulePhase {
    /// Tried at every node, bottom-up, until no rule fires (bounded).
    Fixpoint,
    /// Applied once at the root after the fixpoint converges.
    Finalize,
}

/// The standard rule set, in application order. Order matters twice: rules
/// earlier in the list win when several match one node, and `Finalize`
/// rules run in list order after the fixpoint.
pub static REGISTRY: &[&dyn RewriteRule] = &[
    &MergeFilters,
    &PushFilterThroughProject,
    &PushFilterBelowSort,
    &PushFilterBelowExplode,
    &FuseProjects,
    &MergeLimits,
    &DropNoopFilter,
    &PruneColumns,
];

/// Looks a rule up by its `RBLO` id.
pub fn rule_by_id(id: &str) -> Option<&'static dyn RewriteRule> {
    REGISTRY.iter().copied().find(|r| r.id() == id)
}

// ---------------------------------------------------------------------------
// The rules
// ---------------------------------------------------------------------------

/// RBLO0001: `Filter ∘ Filter → Filter(AND)` — adjacent filters collapse
/// into one conjunctive predicate, saving a plan node and a row pass.
pub struct MergeFilters;

impl RewriteRule for MergeFilters {
    fn id(&self) -> &'static str {
        "RBLO0001"
    }
    fn name(&self) -> &'static str {
        "merge-filters"
    }
    fn description(&self) -> &'static str {
        "merges adjacent filters into one conjunctive predicate"
    }
    fn apply(&self, plan: &Arc<LogicalPlan>) -> Option<Arc<LogicalPlan>> {
        let LogicalPlan::Filter { input, predicate } = plan.as_ref() else { return None };
        let LogicalPlan::Filter { input: inner_in, predicate: inner_pred } = input.as_ref() else {
            return None;
        };
        Some(Arc::new(LogicalPlan::Filter {
            input: Arc::clone(inner_in),
            predicate: Expr::and(inner_pred.clone(), predicate.clone()),
        }))
    }
}

/// RBLO0002: pushes a filter below a projection by substituting the
/// projected expressions into the predicate — only when that substitution
/// is sound: UDFs inside the predicate read columns by name at runtime, so
/// every column they touch must pass through the projection unchanged.
pub struct PushFilterThroughProject;

impl RewriteRule for PushFilterThroughProject {
    fn id(&self) -> &'static str {
        "RBLO0002"
    }
    fn name(&self) -> &'static str {
        "push-filter-through-project"
    }
    fn description(&self) -> &'static str {
        "pushes a filter below a projection, substituting projected expressions"
    }
    fn apply(&self, plan: &Arc<LogicalPlan>) -> Option<Arc<LogicalPlan>> {
        let LogicalPlan::Filter { input, predicate } = plan.as_ref() else { return None };
        let LogicalPlan::Project { input: proj_in, exprs, schema } = input.as_ref() else {
            return None;
        };
        if !expr_fusable(predicate, exprs) {
            return None;
        }
        let substituted = predicate
            .substitute(&|name| exprs.iter().find(|e| e.name == name).map(|e| e.expr.clone()));
        Some(Arc::new(LogicalPlan::Project {
            input: Arc::new(LogicalPlan::Filter {
                input: Arc::clone(proj_in),
                predicate: substituted,
            }),
            exprs: exprs.clone(),
            schema: Arc::clone(schema),
        }))
    }
}

/// RBLO0003: `Filter ∘ OrderBy → OrderBy ∘ Filter` — filtering before the
/// sort shrinks the shuffle. A filter keeps relative order, so the sorted
/// output is unchanged.
pub struct PushFilterBelowSort;

impl RewriteRule for PushFilterBelowSort {
    fn id(&self) -> &'static str {
        "RBLO0003"
    }
    fn name(&self) -> &'static str {
        "push-filter-below-sort"
    }
    fn description(&self) -> &'static str {
        "filters before sorting so the sort shuffles fewer rows"
    }
    fn apply(&self, plan: &Arc<LogicalPlan>) -> Option<Arc<LogicalPlan>> {
        let LogicalPlan::Filter { input, predicate } = plan.as_ref() else { return None };
        let LogicalPlan::OrderBy { input: sort_in, keys } = input.as_ref() else { return None };
        Some(Arc::new(LogicalPlan::OrderBy {
            input: Arc::new(LogicalPlan::Filter {
                input: Arc::clone(sort_in),
                predicate: predicate.clone(),
            }),
            keys: keys.clone(),
        }))
    }
}

/// RBLO0004: pushes a filter below an `EXPLODE` when the predicate provably
/// does not read the exploded column (it then evaluates identically on the
/// pre-explosion row, and skipping a row skips all its expansions).
pub struct PushFilterBelowExplode;

impl RewriteRule for PushFilterBelowExplode {
    fn id(&self) -> &'static str {
        "RBLO0004"
    }
    fn name(&self) -> &'static str {
        "push-filter-below-explode"
    }
    fn description(&self) -> &'static str {
        "pushes a filter below EXPLODE when it does not read the exploded column"
    }
    fn apply(&self, plan: &Arc<LogicalPlan>) -> Option<Arc<LogicalPlan>> {
        let LogicalPlan::Filter { input, predicate } = plan.as_ref() else { return None };
        let LogicalPlan::Explode { input: ex_in, col, as_name, schema } = input.as_ref() else {
            return None;
        };
        let safe = predicate.uses().is_some_and(|used| !used.contains(as_name));
        if !safe {
            return None;
        }
        Some(Arc::new(LogicalPlan::Explode {
            input: Arc::new(LogicalPlan::Filter {
                input: Arc::clone(ex_in),
                predicate: predicate.clone(),
            }),
            col: col.clone(),
            as_name: as_name.clone(),
            schema: Arc::clone(schema),
        }))
    }
}

/// RBLO0005: `Project ∘ Project` fusion — substitutes the inner projection's
/// expressions into the outer one, eliminating an intermediate row pass.
/// UDFs only fuse across pass-through columns (see [`expr_fusable`]).
pub struct FuseProjects;

impl RewriteRule for FuseProjects {
    fn id(&self) -> &'static str {
        "RBLO0005"
    }
    fn name(&self) -> &'static str {
        "fuse-projects"
    }
    fn description(&self) -> &'static str {
        "fuses adjacent projections into one by expression substitution"
    }
    fn apply(&self, plan: &Arc<LogicalPlan>) -> Option<Arc<LogicalPlan>> {
        let LogicalPlan::Project { input, exprs, schema } = plan.as_ref() else { return None };
        let LogicalPlan::Project { input: inner_in, exprs: inner, .. } = input.as_ref() else {
            return None;
        };
        if !exprs.iter().all(|e| expr_fusable(&e.expr, inner)) {
            return None;
        }
        let fused: Vec<NamedExpr> = exprs
            .iter()
            .map(|e| NamedExpr {
                name: e.name.clone(),
                expr: e.expr.substitute(&|name| {
                    inner.iter().find(|ie| ie.name == name).map(|ie| ie.expr.clone())
                }),
                dtype: e.dtype,
            })
            .collect();
        Some(Arc::new(LogicalPlan::Project {
            input: Arc::clone(inner_in),
            exprs: fused,
            schema: Arc::clone(schema),
        }))
    }
}

/// RBLO0006: `Limit ∘ Limit → Limit(min)` — nested limits collapse to the
/// tighter bound.
pub struct MergeLimits;

impl RewriteRule for MergeLimits {
    fn id(&self) -> &'static str {
        "RBLO0006"
    }
    fn name(&self) -> &'static str {
        "merge-limits"
    }
    fn description(&self) -> &'static str {
        "collapses nested limits to the tighter bound"
    }
    fn apply(&self, plan: &Arc<LogicalPlan>) -> Option<Arc<LogicalPlan>> {
        let LogicalPlan::Limit { input, n } = plan.as_ref() else { return None };
        let LogicalPlan::Limit { input: inner_in, n: m } = input.as_ref() else { return None };
        Some(Arc::new(LogicalPlan::Limit { input: Arc::clone(inner_in), n: (*n).min(*m) }))
    }
}

/// RBLO0007: drops a filter whose predicate is the literal `true` — every
/// row passes, so the node is a no-op.
pub struct DropNoopFilter;

impl RewriteRule for DropNoopFilter {
    fn id(&self) -> &'static str {
        "RBLO0007"
    }
    fn name(&self) -> &'static str {
        "drop-noop-filter"
    }
    fn description(&self) -> &'static str {
        "removes a filter whose predicate is literally true"
    }
    fn apply(&self, plan: &Arc<LogicalPlan>) -> Option<Arc<LogicalPlan>> {
        let LogicalPlan::Filter { input, predicate } = plan.as_ref() else { return None };
        match predicate {
            Expr::Lit(Value::Bool(true)) => Some(Arc::clone(input)),
            _ => None,
        }
    }
}

/// RBLO0008: column pruning — drops projection outputs that no ancestor
/// requires, the "does not create the column at all" optimization of §4.7.
/// Runs once at the root after the fixpoint (it is a whole-plan pass, not a
/// local rewrite).
pub struct PruneColumns;

impl RewriteRule for PruneColumns {
    fn id(&self) -> &'static str {
        "RBLO0008"
    }
    fn name(&self) -> &'static str {
        "prune-columns"
    }
    fn description(&self) -> &'static str {
        "drops projected columns that no ancestor operator reads"
    }
    fn phase(&self) -> RulePhase {
        RulePhase::Finalize
    }
    fn apply(&self, plan: &Arc<LogicalPlan>) -> Option<Arc<LogicalPlan>> {
        let all: BTreeSet<String> = plan.schema().fields().iter().map(|f| f.name.clone()).collect();
        let pruned = prune(plan, &all);
        // Pruning rebuilds the tree unconditionally; report a firing only
        // when the plan actually changed shape.
        if pruned.render() == plan.render() {
            None
        } else {
            Some(pruned)
        }
    }
}

/// A UDF can only fuse across a projection if every column it reads passes
/// through that projection unchanged (the UDF looks columns up by name at
/// runtime, so substitution cannot rewrite its body).
fn expr_fusable(e: &Expr, inner: &[NamedExpr]) -> bool {
    match e {
        Expr::Udf { uses, .. } => match uses {
            Some(cols) => {
                cols.iter().all(|c| inner.iter().any(|ie| ie.name == *c && ie.is_passthrough()))
            }
            None => false,
        },
        Expr::Col(_) | Expr::Lit(_) => true,
        Expr::Cmp(a, _, b) | Expr::Num(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
            expr_fusable(a, inner) && expr_fusable(b, inner)
        }
        Expr::Not(a) | Expr::IsNull(a) => expr_fusable(a, inner),
    }
}

/// The recursive required-columns pass behind [`PruneColumns`].
fn prune(plan: &Arc<LogicalPlan>, required: &BTreeSet<String>) -> Arc<LogicalPlan> {
    match plan.as_ref() {
        LogicalPlan::Project { input, exprs, .. } => {
            let kept: Vec<NamedExpr> =
                exprs.iter().filter(|e| required.contains(&e.name)).cloned().collect();
            let kept = if kept.is_empty() { vec![exprs[0].clone()] } else { kept };
            let mut child_req = BTreeSet::new();
            let mut opaque = false;
            for e in &kept {
                match e.expr.uses() {
                    Some(cols) => child_req.extend(cols),
                    None => opaque = true,
                }
            }
            if opaque {
                child_req = input.schema().fields().iter().map(|f| f.name.clone()).collect();
            }
            let new_input = prune(input, &child_req);
            let schema = Schema::new(kept.iter().map(|e| Field::new(&e.name, e.dtype)).collect());
            Arc::new(LogicalPlan::Project { input: new_input, exprs: kept, schema })
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut child_req = required.clone();
            match predicate.uses() {
                Some(cols) => child_req.extend(cols),
                None => {
                    child_req.extend(input.schema().fields().iter().map(|f| f.name.clone()));
                }
            }
            Arc::new(LogicalPlan::Filter {
                input: prune(input, &child_req),
                predicate: predicate.clone(),
            })
        }
        LogicalPlan::OrderBy { input, keys } => {
            let mut child_req = required.clone();
            child_req.extend(keys.iter().map(|(k, _)| k.clone()));
            Arc::new(LogicalPlan::OrderBy { input: prune(input, &child_req), keys: keys.clone() })
        }
        LogicalPlan::Explode { input, col, as_name, schema } => {
            let mut child_req: BTreeSet<String> =
                required.iter().filter(|c| *c != as_name).cloned().collect();
            child_req.insert(col.clone());
            let new_input = prune(input, &child_req);
            // The cached schema must be rebuilt from the pruned child — it
            // may have lost columns.
            let item_dtype = schema.field(as_name).map(|f| f.dtype).unwrap_or(super::DataType::Any);
            let fields = new_input
                .schema()
                .fields()
                .iter()
                .map(|f| if f.name == *col { Field::new(as_name, item_dtype) } else { f.clone() })
                .collect();
            Arc::new(LogicalPlan::Explode {
                input: new_input,
                col: col.clone(),
                as_name: as_name.clone(),
                schema: Schema::new(fields),
            })
        }
        LogicalPlan::GroupBy { input, keys, aggs, schema } => {
            let mut child_req: BTreeSet<String> = keys.iter().cloned().collect();
            child_req.extend(aggs.iter().filter_map(|(a, _)| a.input_col().map(String::from)));
            Arc::new(LogicalPlan::GroupBy {
                input: prune(input, &child_req),
                keys: keys.clone(),
                aggs: aggs.clone(),
                schema: Arc::clone(schema),
            })
        }
        LogicalPlan::ZipWithIndex { input, name, start, schema: _ } => {
            let child_req: BTreeSet<String> =
                required.iter().filter(|c| *c != name).cloned().collect();
            let child_req = if child_req.is_empty() {
                input.schema().fields().iter().map(|f| f.name.clone()).collect()
            } else {
                child_req
            };
            let new_input = prune(input, &child_req);
            // Rebuild the cached schema from the pruned child — it may have
            // lost columns.
            let mut fields = new_input.schema().fields().to_vec();
            fields.push(Field::new(name, super::DataType::I64));
            Arc::new(LogicalPlan::ZipWithIndex {
                input: new_input,
                name: name.clone(),
                start: *start,
                schema: Schema::new(fields),
            })
        }
        LogicalPlan::Limit { input, n } => {
            Arc::new(LogicalPlan::Limit { input: prune(input, required), n: *n })
        }
        LogicalPlan::FromRdd { .. } => Arc::clone(plan),
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// One rule application, in firing order.
#[derive(Debug, Clone)]
pub struct RuleFire {
    pub rule: &'static str,
    /// The fixpoint pass during which the rule fired (finalize rules report
    /// the pass after the last fixpoint one).
    pub pass: u64,
}

/// A rule fired but broke a property it declared to preserve. In debug
/// builds this panics instead; in release builds the rewrite is rejected
/// and the violation recorded here.
#[derive(Debug, Clone)]
pub struct PropertyViolation {
    pub rule: &'static str,
    pub pass: u64,
    pub detail: String,
}

/// What one `Optimizer::run` did: which rules fired when, and any property
/// violations (non-empty only with [`CheckMode::Collect`]).
#[derive(Debug, Clone, Default)]
pub struct OptimizeTrace {
    pub fires: Vec<RuleFire>,
    pub violations: Vec<PropertyViolation>,
}

impl OptimizeTrace {
    /// Renders the firing sequence as `RBLO0001@0 RBLO0005@1 …` for logs
    /// and the shell's per-query trace line.
    pub fn render_fires(&self) -> String {
        self.fires.iter().map(|f| format!("{}@{}", f.rule, f.pass)).collect::<Vec<_>>().join(" ")
    }
}

/// What to do when a firing breaks its property declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Panic with the violation (the debug-build default).
    Panic,
    /// Reject the rewrite, record the violation, keep optimizing (the
    /// release-build default, and what the mutation tests use).
    Collect,
}

impl CheckMode {
    fn default_for_build() -> CheckMode {
        if cfg!(debug_assertions) {
            CheckMode::Panic
        } else {
            CheckMode::Collect
        }
    }
}

/// Bounded fixpoint iterations — deep rewrite chains beyond this are left
/// partially optimized (same bound as the pre-registry monolith).
const MAX_PASSES: u64 = 8;

/// The rule-driven optimizer. Holds an ordered rule list so tests can run
/// reduced or deliberately-broken rule sets.
pub struct Optimizer {
    rules: Vec<&'static dyn RewriteRule>,
    check_mode: CheckMode,
}

impl Optimizer {
    /// The full standard registry with the build-appropriate check mode.
    pub fn standard() -> Optimizer {
        Optimizer { rules: REGISTRY.to_vec(), check_mode: CheckMode::default_for_build() }
    }

    /// An optimizer over an explicit rule list (mutation tests inject
    /// broken rules here).
    pub fn with_rules(rules: Vec<&'static dyn RewriteRule>) -> Optimizer {
        Optimizer { rules, check_mode: CheckMode::default_for_build() }
    }

    pub fn check_mode(mut self, mode: CheckMode) -> Optimizer {
        self.check_mode = mode;
        self
    }

    /// Removes every rule whose id is in `disabled` (conf-driven bisection).
    pub fn without_rules(mut self, disabled: &BTreeSet<String>) -> Optimizer {
        self.rules.retain(|r| !disabled.contains(r.id()));
        self
    }

    pub fn rules(&self) -> &[&'static dyn RewriteRule] {
        &self.rules
    }

    /// Optimizes `plan`, returning the rewritten plan and the fire trace.
    pub fn run(&self, plan: Arc<LogicalPlan>) -> (Arc<LogicalPlan>, OptimizeTrace) {
        let mut trace = OptimizeTrace::default();
        let mut current = plan;
        let mut pass = 0;
        while pass < MAX_PASSES {
            let (next, changed) = self.rewrite_pass(&current, pass, &mut trace);
            current = next;
            pass += 1;
            if !changed {
                break;
            }
        }
        for rule in self.rules.iter().filter(|r| r.phase() == RulePhase::Finalize) {
            if let Some(out) = rule.apply(&current) {
                if let Some(out) = self.verify_fire(*rule, &current, out, pass, &mut trace) {
                    current = out;
                }
            }
        }
        // In debug/test builds, every optimized plan must still satisfy the
        // structural invariants the validating constructors established.
        #[cfg(debug_assertions)]
        if let Err(e) = current.validate() {
            panic!("optimizer produced an invalid plan: {e}");
        }
        (current, trace)
    }

    /// One bottom-up traversal: children first, then at most one fixpoint
    /// rule per node.
    fn rewrite_pass(
        &self,
        plan: &Arc<LogicalPlan>,
        pass: u64,
        trace: &mut OptimizeTrace,
    ) -> (Arc<LogicalPlan>, bool) {
        let (plan, changed) = self.rebuild_children(plan, pass, trace);
        for rule in self.rules.iter().filter(|r| r.phase() == RulePhase::Fixpoint) {
            let Some(out) = rule.apply(&plan) else { continue };
            return match self.verify_fire(*rule, &plan, out, pass, trace) {
                Some(out) => (out, true),
                // The rule matched but its rewrite was rejected by the
                // property checker (Collect mode): stop trying further
                // rules at this node, mirroring the one-rule-per-visit
                // discipline.
                None => (plan, changed),
            };
        }
        (plan, changed)
    }

    /// Verifies one firing against the rule's property contract; returns
    /// the rewrite if it holds.
    fn verify_fire(
        &self,
        rule: &'static dyn RewriteRule,
        plan: &Arc<LogicalPlan>,
        out: Arc<LogicalPlan>,
        pass: u64,
        trace: &mut OptimizeTrace,
    ) -> Option<Arc<LogicalPlan>> {
        let before = derive(plan);
        let after = derive(&out);
        match check_preserved(&before, &after, rule.preserves()) {
            Ok(()) => {
                trace.fires.push(RuleFire { rule: rule.id(), pass });
                Some(out)
            }
            Err(detail) => {
                let msg = format!(
                    "optimizer rule {} ({}) broke its property contract: {detail}",
                    rule.id(),
                    rule.name()
                );
                if self.check_mode == CheckMode::Panic {
                    panic!("{msg}");
                }
                trace.violations.push(PropertyViolation { rule: rule.id(), pass, detail });
                None
            }
        }
    }

    fn rebuild_children(
        &self,
        plan: &Arc<LogicalPlan>,
        pass: u64,
        trace: &mut OptimizeTrace,
    ) -> (Arc<LogicalPlan>, bool) {
        let rebuilt = match plan.as_ref() {
            LogicalPlan::FromRdd { .. } => return (Arc::clone(plan), false),
            LogicalPlan::Project { input, exprs, schema } => {
                let (ni, ch) = self.rewrite_pass(input, pass, trace);
                if !ch {
                    return (Arc::clone(plan), false);
                }
                LogicalPlan::Project { input: ni, exprs: exprs.clone(), schema: Arc::clone(schema) }
            }
            LogicalPlan::Filter { input, predicate } => {
                let (ni, ch) = self.rewrite_pass(input, pass, trace);
                if !ch {
                    return (Arc::clone(plan), false);
                }
                LogicalPlan::Filter { input: ni, predicate: predicate.clone() }
            }
            LogicalPlan::Explode { input, col, as_name, schema } => {
                let (ni, ch) = self.rewrite_pass(input, pass, trace);
                if !ch {
                    return (Arc::clone(plan), false);
                }
                LogicalPlan::Explode {
                    input: ni,
                    col: col.clone(),
                    as_name: as_name.clone(),
                    schema: Arc::clone(schema),
                }
            }
            LogicalPlan::GroupBy { input, keys, aggs, schema } => {
                let (ni, ch) = self.rewrite_pass(input, pass, trace);
                if !ch {
                    return (Arc::clone(plan), false);
                }
                LogicalPlan::GroupBy {
                    input: ni,
                    keys: keys.clone(),
                    aggs: aggs.clone(),
                    schema: Arc::clone(schema),
                }
            }
            LogicalPlan::OrderBy { input, keys } => {
                let (ni, ch) = self.rewrite_pass(input, pass, trace);
                if !ch {
                    return (Arc::clone(plan), false);
                }
                LogicalPlan::OrderBy { input: ni, keys: keys.clone() }
            }
            LogicalPlan::ZipWithIndex { input, name, start, schema } => {
                let (ni, ch) = self.rewrite_pass(input, pass, trace);
                if !ch {
                    return (Arc::clone(plan), false);
                }
                LogicalPlan::ZipWithIndex {
                    input: ni,
                    name: name.clone(),
                    start: *start,
                    schema: Arc::clone(schema),
                }
            }
            LogicalPlan::Limit { input, n } => {
                let (ni, ch) = self.rewrite_pass(input, pass, trace);
                if !ch {
                    return (Arc::clone(plan), false);
                }
                LogicalPlan::Limit { input: ni, n: *n }
            }
        };
        (Arc::new(rebuilt), true)
    }
}

// ---------------------------------------------------------------------------
// Per-site application (the fuzzer's entry point)
// ---------------------------------------------------------------------------

/// Applies `rule` in isolation at exactly one matching site of `plan`,
/// returning one whole-plan rewrite per site where the rule matches (no
/// fixpoint, no other rules, no property gate — callers verify). Site `i`
/// is the `i`-th matching node in a pre-order walk.
pub fn apply_at_each_site(
    rule: &dyn RewriteRule,
    plan: &Arc<LogicalPlan>,
) -> Vec<Arc<LogicalPlan>> {
    let total = count_sites(rule, plan);
    (0..total)
        .map(|site| {
            let mut next = 0;
            apply_at_site(rule, plan, site, &mut next).expect("site index counted above must exist")
        })
        .collect()
}

fn count_sites(rule: &dyn RewriteRule, plan: &Arc<LogicalPlan>) -> usize {
    let here = usize::from(rule.apply(plan).is_some());
    here + plan.input().map_or(0, |input| count_sites(rule, input))
}

fn apply_at_site(
    rule: &dyn RewriteRule,
    plan: &Arc<LogicalPlan>,
    site: usize,
    next: &mut usize,
) -> Option<Arc<LogicalPlan>> {
    if let Some(out) = rule.apply(plan) {
        let here = *next;
        *next += 1;
        if here == site {
            return Some(out);
        }
    }
    let input = plan.input()?;
    let new_input = apply_at_site(rule, input, site, next)?;
    Some(plan.with_input(new_input))
}
