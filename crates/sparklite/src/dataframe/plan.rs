//! The DataFrame logical plan, its rule-based optimizer (Catalyst-lite),
//! and compilation onto the RDD substrate.

use super::batch::{self, ColumnBatch};
use super::expr::{BoundExpr, Expr, KeyValue, SortDir, SortKey};
use super::{DataType, Field, Row, RowCodec, Schema, Value};
use crate::context::Core;
use crate::error::{Result, SparkliteError};
use crate::events::Event;
use crate::rdd::{BoxIter, FromPartitionsRdd, Rdd};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A named output expression of a projection.
#[derive(Debug, Clone)]
pub struct NamedExpr {
    pub name: String,
    pub expr: Expr,
    pub dtype: DataType,
}

impl NamedExpr {
    /// A column passed through unchanged.
    pub fn passthrough(name: &str, dtype: DataType) -> NamedExpr {
        NamedExpr { name: name.to_string(), expr: Expr::col(name), dtype }
    }

    pub(crate) fn is_passthrough(&self) -> bool {
        self.expr.is_col(&self.name)
    }
}

/// Aggregate functions for `GROUP BY`. `Count` counts rows; the column
/// variants ignore NULLs, like their SQL counterparts.
#[derive(Debug, Clone)]
pub enum Agg {
    Count,
    CountCol(String),
    Sum(String),
    Avg(String),
    Min(String),
    Max(String),
    /// An arbitrary representative per group — how engines recover the
    /// original key item after grouping on an encoded key (§4.7 uses
    /// `ARRAY_DISTINCT`; `FIRST` is the degenerate, cheaper equivalent when
    /// every row of the group carries the same payload).
    First(String),
    /// Spark's `COLLECT_LIST`: materializes the group's values.
    CollectList(String),
}

impl Agg {
    pub(crate) fn input_col(&self) -> Option<&str> {
        match self {
            Agg::Count => None,
            Agg::CountCol(c)
            | Agg::Sum(c)
            | Agg::Avg(c)
            | Agg::Min(c)
            | Agg::Max(c)
            | Agg::First(c)
            | Agg::CollectList(c) => Some(c),
        }
    }

    fn output_dtype(&self) -> DataType {
        match self {
            Agg::Count | Agg::CountCol(_) => DataType::I64,
            Agg::Avg(_) => DataType::F64,
            Agg::CollectList(_) => DataType::List,
            Agg::Sum(_) | Agg::Min(_) | Agg::Max(_) | Agg::First(_) => DataType::Any,
        }
    }
}

/// Partial aggregate state, mergeable across shuffle blocks.
#[derive(Clone)]
pub(crate) enum AggState {
    Count(i64),
    Sum(Option<Value>),
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
    First(Option<Value>),
    List(Vec<Value>),
}

impl AggState {
    pub(crate) fn create(agg: &Agg, v: Option<&Value>) -> AggState {
        let non_null = v.filter(|v| !v.is_null());
        match agg {
            Agg::Count => AggState::Count(1),
            Agg::CountCol(_) => AggState::Count(non_null.is_some() as i64),
            Agg::Sum(_) => AggState::Sum(non_null.cloned()),
            Agg::Avg(_) => match non_null.and_then(|v| v.as_f64()) {
                Some(x) => AggState::Avg { sum: x, n: 1 },
                None => AggState::Avg { sum: 0.0, n: 0 },
            },
            Agg::Min(_) => AggState::Min(non_null.cloned()),
            Agg::Max(_) => AggState::Max(non_null.cloned()),
            Agg::First(_) => AggState::First(non_null.cloned()),
            Agg::CollectList(_) => {
                AggState::List(non_null.cloned().map(|v| vec![v]).unwrap_or_default())
            }
        }
    }

    pub(crate) fn merge(self, other: AggState) -> AggState {
        use super::expr::value_cmp;
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => AggState::Count(a + b),
            (AggState::Sum(a), AggState::Sum(b)) => AggState::Sum(match (a, b) {
                (None, x) | (x, None) => x,
                (Some(x), Some(y)) => Some(add_values(&x, &y)),
            }),
            (AggState::Avg { sum: s1, n: n1 }, AggState::Avg { sum: s2, n: n2 }) => {
                AggState::Avg { sum: s1 + s2, n: n1 + n2 }
            }
            (AggState::Min(a), AggState::Min(b)) => AggState::Min(match (a, b) {
                (None, x) | (x, None) => x,
                (Some(x), Some(y)) => Some(if value_cmp(&x, &y).is_le() { x } else { y }),
            }),
            (AggState::Max(a), AggState::Max(b)) => AggState::Max(match (a, b) {
                (None, x) | (x, None) => x,
                (Some(x), Some(y)) => Some(if value_cmp(&x, &y).is_ge() { x } else { y }),
            }),
            (AggState::First(a), AggState::First(b)) => AggState::First(a.or(b)),
            (AggState::List(mut a), AggState::List(b)) => {
                a.extend(b);
                AggState::List(a)
            }
            _ => unreachable!("aggregate states of one column always match"),
        }
    }

    /// [`merge`](Self::merge) against a borrowed right-hand state, cloning
    /// only what the merged result actually keeps (the winning MIN/MAX
    /// value, list elements) — the reduce side of the vectorized path
    /// merges straight out of the shared shuffle bucket, so per-pair
    /// clones of the losing side would be pure waste. Must stay
    /// result-identical to `a.merge(b.clone())`, including `Avg`'s
    /// left-to-right addition order (float addition is not associative).
    pub(crate) fn merge_ref(&mut self, other: &AggState) {
        use super::expr::value_cmp;
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => match (&a, b) {
                (_, None) => {}
                (None, Some(_)) => *a = b.clone(),
                (Some(x), Some(y)) => *a = Some(add_values(x, y)),
            },
            (AggState::Avg { sum, n }, AggState::Avg { sum: s2, n: n2 }) => {
                *sum += s2;
                *n += n2;
            }
            (AggState::Min(a), AggState::Min(b)) => match (&a, b) {
                (_, None) => {}
                (None, Some(_)) => *a = b.clone(),
                (Some(x), Some(y)) => {
                    if value_cmp(x, y).is_gt() {
                        *a = Some(y.clone());
                    }
                }
            },
            (AggState::Max(a), AggState::Max(b)) => match (&a, b) {
                (_, None) => {}
                (None, Some(_)) => *a = b.clone(),
                (Some(x), Some(y)) => {
                    if value_cmp(x, y).is_lt() {
                        *a = Some(y.clone());
                    }
                }
            },
            (AggState::First(a), AggState::First(b)) => {
                if a.is_none() {
                    *a = b.clone();
                }
            }
            (AggState::List(a), AggState::List(b)) => a.extend(b.iter().cloned()),
            _ => unreachable!("aggregate states of one column always match"),
        }
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::I64(n),
            AggState::Sum(v) => v.unwrap_or(Value::Null),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::F64(sum / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) | AggState::First(v) => v.unwrap_or(Value::Null),
            AggState::List(items) => Value::List(Arc::new(items)),
        }
    }
}

fn add_values(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::I64(x), Value::I64(y)) => x.checked_add(*y).map(Value::I64).unwrap_or(Value::Null),
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Value::F64(x + y),
            _ => Value::Null,
        },
    }
}

/// Wire codec for GROUP BY shuffle pairs, composed over [`RowCodec`] rather
/// than introducing a second byte format: each `(keys, states)` pair maps
/// to a two-column row `[List(keys), List(encoded states)]`, and each
/// [`AggState`] to a small tagged `Value` list. `Option<Value>` payloads
/// encode presence by arity (`[tag]` vs `[tag, v]`), so `None` and
/// `Some(Null)` — which `Sum` can produce on overflow — stay distinct.
pub(crate) struct GroupPairCodec;

impl GroupPairCodec {
    fn state_to_value(state: &AggState) -> Value {
        let opt = |tag: i64, v: &Option<Value>| {
            let mut items = vec![Value::I64(tag)];
            items.extend(v.clone());
            Value::list(items)
        };
        match state {
            AggState::Count(n) => Value::list(vec![Value::I64(0), Value::I64(*n)]),
            AggState::Sum(v) => opt(1, v),
            AggState::Avg { sum, n } => {
                Value::list(vec![Value::I64(2), Value::F64(*sum), Value::I64(*n)])
            }
            AggState::Min(v) => opt(3, v),
            AggState::Max(v) => opt(4, v),
            AggState::First(v) => opt(5, v),
            AggState::List(items) => {
                Value::list(vec![Value::I64(6), Value::List(Arc::new(items.clone()))])
            }
        }
    }

    fn state_from_value(value: &Value) -> std::result::Result<AggState, String> {
        let Value::List(items) = value else {
            return Err("agg state is not a list".to_string());
        };
        let tag = match items.first() {
            Some(Value::I64(t)) => *t,
            _ => return Err("agg state has no tag".to_string()),
        };
        let opt = || items.get(1).cloned();
        Ok(match (tag, items.get(1), items.get(2)) {
            (0, Some(Value::I64(n)), _) => AggState::Count(*n),
            (1, _, _) => AggState::Sum(opt()),
            (2, Some(Value::F64(sum)), Some(Value::I64(n))) => AggState::Avg { sum: *sum, n: *n },
            (3, _, _) => AggState::Min(opt()),
            (4, _, _) => AggState::Max(opt()),
            (5, _, _) => AggState::First(opt()),
            (6, Some(Value::List(vs)), _) => AggState::List(vs.as_ref().clone()),
            _ => return Err(format!("malformed agg state with tag {tag}")),
        })
    }
}

impl crate::CacheCodec<(Vec<KeyValue>, Vec<AggState>)> for GroupPairCodec {
    fn encode(&self, items: &[(Vec<KeyValue>, Vec<AggState>)]) -> Vec<u8> {
        let rows: Vec<Row> = items
            .iter()
            .map(|(keys, states)| {
                vec![
                    Value::list(keys.iter().map(|k| k.0.clone()).collect()),
                    Value::list(states.iter().map(Self::state_to_value).collect()),
                ]
            })
            .collect();
        RowCodec.encode(&rows)
    }

    fn decode(
        &self,
        bytes: &[u8],
    ) -> std::result::Result<Vec<(Vec<KeyValue>, Vec<AggState>)>, String> {
        RowCodec
            .decode(bytes)?
            .into_iter()
            .map(|row| {
                let (Some(Value::List(keys)), Some(Value::List(states))) =
                    (row.first(), row.get(1))
                else {
                    return Err("malformed group pair row".to_string());
                };
                let keys: Vec<KeyValue> = keys.iter().map(|v| KeyValue(v.clone())).collect();
                let states = states
                    .iter()
                    .map(Self::state_from_value)
                    .collect::<std::result::Result<Vec<_>, String>>()?;
                Ok((keys, states))
            })
            .collect()
    }
}

/// The logical plan tree. Every node caches its output schema.
pub enum LogicalPlan {
    FromRdd {
        schema: Arc<Schema>,
        rows: Rdd<Row>,
    },
    Project {
        input: Arc<LogicalPlan>,
        exprs: Vec<NamedExpr>,
        schema: Arc<Schema>,
    },
    Filter {
        input: Arc<LogicalPlan>,
        predicate: Expr,
    },
    /// Replaces the list column `col` with one output row per element,
    /// renamed to `as_name` (schema otherwise unchanged). Empty/NULL lists
    /// yield no rows — Spark's `EXPLODE`.
    Explode {
        input: Arc<LogicalPlan>,
        col: String,
        as_name: String,
        schema: Arc<Schema>,
    },
    GroupBy {
        input: Arc<LogicalPlan>,
        keys: Vec<String>,
        aggs: Vec<(Agg, String)>,
        schema: Arc<Schema>,
    },
    OrderBy {
        input: Arc<LogicalPlan>,
        keys: Vec<(String, SortDir)>,
    },
    ZipWithIndex {
        input: Arc<LogicalPlan>,
        name: String,
        start: i64,
        schema: Arc<Schema>,
    },
    Limit {
        input: Arc<LogicalPlan>,
        n: usize,
    },
}

impl LogicalPlan {
    pub fn schema(&self) -> &Arc<Schema> {
        match self {
            LogicalPlan::FromRdd { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Explode { schema, .. }
            | LogicalPlan::GroupBy { schema, .. }
            | LogicalPlan::ZipWithIndex { schema, .. } => schema,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::OrderBy { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// The node's single input, `None` for leaves. Every operator in this
    /// plan algebra is unary, so this fully describes the tree shape.
    pub fn input(&self) -> Option<&Arc<LogicalPlan>> {
        match self {
            LogicalPlan::FromRdd { .. } => None,
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Explode { input, .. }
            | LogicalPlan::GroupBy { input, .. }
            | LogicalPlan::OrderBy { input, .. }
            | LogicalPlan::ZipWithIndex { input, .. }
            | LogicalPlan::Limit { input, .. } => Some(input),
        }
    }

    /// Rebuilds this node over a replacement input, keeping every other
    /// field (cached schemas included — callers must only substitute
    /// schema-compatible inputs). Panics on leaves.
    pub fn with_input(&self, new_input: Arc<LogicalPlan>) -> Arc<LogicalPlan> {
        Arc::new(match self {
            LogicalPlan::FromRdd { .. } => panic!("FromRdd has no input to replace"),
            LogicalPlan::Project { exprs, schema, .. } => LogicalPlan::Project {
                input: new_input,
                exprs: exprs.clone(),
                schema: Arc::clone(schema),
            },
            LogicalPlan::Filter { predicate, .. } => {
                LogicalPlan::Filter { input: new_input, predicate: predicate.clone() }
            }
            LogicalPlan::Explode { col, as_name, schema, .. } => LogicalPlan::Explode {
                input: new_input,
                col: col.clone(),
                as_name: as_name.clone(),
                schema: Arc::clone(schema),
            },
            LogicalPlan::GroupBy { keys, aggs, schema, .. } => LogicalPlan::GroupBy {
                input: new_input,
                keys: keys.clone(),
                aggs: aggs.clone(),
                schema: Arc::clone(schema),
            },
            LogicalPlan::OrderBy { keys, .. } => {
                LogicalPlan::OrderBy { input: new_input, keys: keys.clone() }
            }
            LogicalPlan::ZipWithIndex { name, start, schema, .. } => LogicalPlan::ZipWithIndex {
                input: new_input,
                name: name.clone(),
                start: *start,
                schema: Arc::clone(schema),
            },
            LogicalPlan::Limit { n, .. } => LogicalPlan::Limit { input: new_input, n: *n },
        })
    }

    /// Renders the plan as an indented one-node-per-line tree — the stable
    /// textual form the golden rule tests pin and `EXPLAIN`-style output
    /// builds on. Two plans render equal iff they are structurally equal
    /// (UDFs render by name).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            LogicalPlan::FromRdd { schema, .. } => {
                let cols: Vec<String> =
                    schema.fields().iter().map(|f| format!("{}: {:?}", f.name, f.dtype)).collect();
                out.push_str(&format!("FromRdd [{}]\n", cols.join(", ")));
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let cols: Vec<String> = exprs
                    .iter()
                    .map(|e| format!("{} := {:?} as {:?}", e.name, e.expr, e.dtype))
                    .collect();
                out.push_str(&format!("Project [{}]\n", cols.join(", ")));
                input.render_into(out, depth + 1);
            }
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!("Filter {predicate:?}\n"));
                input.render_into(out, depth + 1);
            }
            LogicalPlan::Explode { input, col, as_name, .. } => {
                out.push_str(&format!("Explode {col} as {as_name}\n"));
                input.render_into(out, depth + 1);
            }
            LogicalPlan::GroupBy { input, keys, aggs, .. } => {
                let aggs: Vec<String> =
                    aggs.iter().map(|(a, name)| format!("{name} := {a:?}")).collect();
                out.push_str(&format!(
                    "GroupBy keys=[{}] aggs=[{}]\n",
                    keys.join(", "),
                    aggs.join(", ")
                ));
                input.render_into(out, depth + 1);
            }
            LogicalPlan::OrderBy { input, keys } => {
                let keys: Vec<String> = keys.iter().map(|(k, d)| format!("{k} {d:?}")).collect();
                out.push_str(&format!("OrderBy [{}]\n", keys.join(", ")));
                input.render_into(out, depth + 1);
            }
            LogicalPlan::ZipWithIndex { input, name, start, .. } => {
                out.push_str(&format!("ZipWithIndex {name} from {start}\n"));
                input.render_into(out, depth + 1);
            }
            LogicalPlan::Limit { input, n } => {
                out.push_str(&format!("Limit {n}\n"));
                input.render_into(out, depth + 1);
            }
        }
    }

    // ---- validating constructors ----

    pub fn project(input: Arc<LogicalPlan>, exprs: Vec<NamedExpr>) -> Result<LogicalPlan> {
        if exprs.is_empty() {
            return Err(SparkliteError::Schema("projection needs at least one column".into()));
        }
        let mut seen = BTreeSet::new();
        for e in &exprs {
            if !seen.insert(&e.name) {
                return Err(SparkliteError::Schema(format!(
                    "duplicate output column '{}'",
                    e.name
                )));
            }
            // Binding validates every referenced column.
            e.expr.bind(input.schema())?;
        }
        let schema = Schema::new(exprs.iter().map(|e| Field::new(&e.name, e.dtype)).collect());
        Ok(LogicalPlan::Project { input, exprs, schema })
    }

    pub fn filter(input: Arc<LogicalPlan>, predicate: Expr) -> Result<LogicalPlan> {
        predicate.bind(input.schema())?;
        Ok(LogicalPlan::Filter { input, predicate })
    }

    pub fn explode(
        input: Arc<LogicalPlan>,
        col: &str,
        as_name: String,
        dtype: DataType,
    ) -> Result<LogicalPlan> {
        let idx = input.schema().resolve(col)?;
        let f = &input.schema().fields()[idx];
        if !matches!(f.dtype, DataType::List | DataType::Any) {
            return Err(SparkliteError::Schema(format!(
                "EXPLODE needs a list column, '{col}' is {:?}",
                f.dtype
            )));
        }
        if input.schema().index_of(&as_name).is_some_and(|i| i != idx) {
            return Err(SparkliteError::Schema(format!(
                "output column '{as_name}' already exists"
            )));
        }
        let fields = input
            .schema()
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| if i == idx { Field::new(&as_name, dtype) } else { f.clone() })
            .collect();
        Ok(LogicalPlan::Explode {
            input,
            col: col.to_string(),
            as_name,
            schema: Schema::new(fields),
        })
    }

    pub fn group_by(
        input: Arc<LogicalPlan>,
        keys: Vec<String>,
        aggs: Vec<(Agg, String)>,
    ) -> Result<LogicalPlan> {
        let mut fields = Vec::with_capacity(keys.len() + aggs.len());
        for k in &keys {
            let idx = input.schema().resolve(k)?;
            fields.push(input.schema().fields()[idx].clone());
        }
        for (agg, name) in &aggs {
            if let Some(c) = agg.input_col() {
                input.schema().resolve(c)?;
            }
            fields.push(Field::new(name, agg.output_dtype()));
        }
        let mut seen = BTreeSet::new();
        for f in &fields {
            if !seen.insert(f.name.clone()) {
                return Err(SparkliteError::Schema(format!(
                    "duplicate output column '{}' in GROUP BY",
                    f.name
                )));
            }
        }
        Ok(LogicalPlan::GroupBy { input, keys, aggs, schema: Schema::new(fields) })
    }

    pub fn order_by(input: Arc<LogicalPlan>, keys: Vec<(String, SortDir)>) -> Result<LogicalPlan> {
        for (k, _) in &keys {
            input.schema().resolve(k)?;
        }
        Ok(LogicalPlan::OrderBy { input, keys })
    }

    pub fn zip_with_index(
        input: Arc<LogicalPlan>,
        name: String,
        start: i64,
    ) -> Result<LogicalPlan> {
        if input.schema().index_of(&name).is_some() {
            return Err(SparkliteError::Schema(format!("column '{name}' already exists")));
        }
        let mut fields = input.schema().fields().to_vec();
        fields.push(Field::new(&name, DataType::I64));
        Ok(LogicalPlan::ZipWithIndex { input, name, start, schema: Schema::new(fields) })
    }

    // ---- invariant checking ----

    /// Checks the structural invariants of the whole plan tree: every
    /// referenced column resolves against the child schema, cached schemas
    /// are consistent with what each node actually produces, and output
    /// dtypes match. The validating constructors guarantee this for
    /// user-built plans; `validate` re-checks it after optimizer rewrites
    /// (run automatically in debug/test builds).
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| Err(SparkliteError::Schema(format!("invalid plan: {msg}")));
        match self {
            LogicalPlan::FromRdd { .. } => {}
            LogicalPlan::Project { input, exprs, schema } => {
                input.validate()?;
                if exprs.is_empty() {
                    return fail("projection with no output columns".into());
                }
                let mut seen = BTreeSet::new();
                for e in exprs {
                    if !seen.insert(&e.name) {
                        return fail(format!("duplicate projected column '{}'", e.name));
                    }
                    e.expr.bind(input.schema())?;
                }
                if schema.fields().len() != exprs.len() {
                    return fail(format!(
                        "projection schema has {} fields for {} expressions",
                        schema.fields().len(),
                        exprs.len()
                    ));
                }
                for (f, e) in schema.fields().iter().zip(exprs) {
                    if f.name != e.name || f.dtype != e.dtype {
                        return fail(format!(
                            "projection schema field '{}': {:?} does not match expression \
                             '{}': {:?}",
                            f.name, f.dtype, e.name, e.dtype
                        ));
                    }
                }
            }
            LogicalPlan::Filter { input, predicate } => {
                input.validate()?;
                predicate.bind(input.schema())?;
            }
            LogicalPlan::Explode { input, col, as_name, schema } => {
                input.validate()?;
                let idx = input.schema().resolve(col)?;
                let in_fields = input.schema().fields();
                if schema.fields().len() != in_fields.len() {
                    return fail("EXPLODE must preserve the column count".into());
                }
                for (i, (f, inf)) in schema.fields().iter().zip(in_fields).enumerate() {
                    if i == idx {
                        if f.name != *as_name {
                            return fail(format!(
                                "EXPLODE output column is '{}', expected '{as_name}'",
                                f.name
                            ));
                        }
                    } else if f != inf {
                        return fail(format!(
                            "EXPLODE changed unrelated column '{}' into '{}'",
                            inf.name, f.name
                        ));
                    }
                }
            }
            LogicalPlan::GroupBy { input, keys, aggs, schema } => {
                input.validate()?;
                if schema.fields().len() != keys.len() + aggs.len() {
                    return fail(format!(
                        "GROUP BY schema has {} fields for {} keys + {} aggregates",
                        schema.fields().len(),
                        keys.len(),
                        aggs.len()
                    ));
                }
                for (k, f) in keys.iter().zip(schema.fields()) {
                    let idx = input.schema().resolve(k)?;
                    let inf = &input.schema().fields()[idx];
                    if f.name != *k || f.dtype != inf.dtype {
                        return fail(format!(
                            "GROUP BY key '{k}' maps to schema field '{}': {:?}",
                            f.name, f.dtype
                        ));
                    }
                }
                for ((agg, name), f) in aggs.iter().zip(&schema.fields()[keys.len()..]) {
                    if let Some(c) = agg.input_col() {
                        input.schema().resolve(c)?;
                    }
                    if f.name != *name || f.dtype != agg.output_dtype() {
                        return fail(format!(
                            "aggregate '{name}' maps to schema field '{}': {:?}",
                            f.name, f.dtype
                        ));
                    }
                }
            }
            LogicalPlan::OrderBy { input, keys } => {
                input.validate()?;
                for (k, _) in keys {
                    input.schema().resolve(k)?;
                }
            }
            LogicalPlan::ZipWithIndex { input, name, start: _, schema } => {
                input.validate()?;
                if input.schema().index_of(name).is_some() {
                    return fail(format!("index column '{name}' shadows an input column"));
                }
                let in_fields = input.schema().fields();
                if schema.fields().len() != in_fields.len() + 1 {
                    return fail("ZIP WITH INDEX must add exactly one column".into());
                }
                for (f, inf) in schema.fields().iter().zip(in_fields) {
                    if f != inf {
                        return fail(format!(
                            "ZIP WITH INDEX changed input column '{}' into '{}'",
                            inf.name, f.name
                        ));
                    }
                }
                let last = schema.fields().last().expect("non-empty");
                if last.name != *name || last.dtype != DataType::I64 {
                    return fail(format!(
                        "index column is '{}': {:?}, expected '{name}': I64",
                        last.name, last.dtype
                    ));
                }
            }
            LogicalPlan::Limit { input, .. } => input.validate()?,
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

/// Applies the standard rewrite-rule registry (`dataframe::rules`) to a
/// bounded fixpoint, bottom-up:
///
/// 1. merge adjacent filters (RBLO0001);
/// 2. push filters below projections (with substitution, RBLO0002), sorts
///    (RBLO0003), explodes (when the predicate does not touch the exploded
///    column, RBLO0004) and zip-with-index (never — indices would change);
/// 3. fuse adjacent projections when safe (UDFs only fuse across
///    pass-through columns, RBLO0005);
/// 4. collapse nested limits (RBLO0006) and drop literally-true filters
///    (RBLO0007);
/// 5. prune projection columns that no ancestor reads (RBLO0008).
///
/// Every individual firing is checked against the rule's declared
/// [`super::properties::PlanProperties`] contract. This convenience wrapper
/// discards the fire trace; engine call sites use
/// [`super::rules::Optimizer`] directly to surface it.
pub fn optimize(plan: Arc<LogicalPlan>) -> Arc<LogicalPlan> {
    super::rules::Optimizer::standard().run(plan).0
}

// ---------------------------------------------------------------------------
// Physical compilation
// ---------------------------------------------------------------------------

/// Compiles a (normally optimized) plan to an RDD of rows.
///
/// The default physical layer is columnar: pipeline segments of
/// Project/Filter/Explode/Limit execute as vectorized kernels over
/// [`ColumnBatch`]es, fused into a single pass per segment, with rows
/// materialized only at shuffle and RDD boundaries ([`RowCodec`] stays the
/// only wire/persist format). [`crate::conf::ExecConf::row_major`] selects
/// the historical row-at-a-time interpreter instead — kept as the reference
/// implementation the columnar differential test battery compares against.
pub fn compile(core: &Arc<Core>, plan: &Arc<LogicalPlan>) -> Result<Rdd<Row>> {
    if core.conf.exec.row_major {
        compile_row_major(core, plan)
    } else {
        compile_columnar(core, plan)
    }
}

/// Row-at-a-time reference compiler (`ExecConf::row_major`).
fn compile_row_major(core: &Arc<Core>, plan: &Arc<LogicalPlan>) -> Result<Rdd<Row>> {
    let num_parts = core.conf.default_parallelism;
    match plan.as_ref() {
        LogicalPlan::FromRdd { rows, .. } => Ok(rows.clone()),
        LogicalPlan::Project { input, exprs, .. } => {
            let rdd = compile_row_major(core, input)?;
            let bound: Vec<BoundExpr> =
                exprs.iter().map(|e| e.expr.bind(input.schema())).collect::<Result<_>>()?;
            Ok(rdd.map(move |row| bound.iter().map(|b| b.eval(&row)).collect::<Row>()))
        }
        LogicalPlan::Filter { input, predicate } => {
            let rdd = compile_row_major(core, input)?;
            let bound = predicate.bind(input.schema())?;
            Ok(rdd.filter(move |row| bound.eval_predicate(row)))
        }
        LogicalPlan::Explode { input, col, .. } => {
            let rdd = compile_row_major(core, input)?;
            let idx = input.schema().resolve(col)?;
            Ok(rdd.flat_map(move |row| {
                let items: Vec<Row> = match &row[idx] {
                    Value::List(l) => l
                        .iter()
                        .map(|v| {
                            let mut r = row.clone();
                            r[idx] = v.clone();
                            r
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                items
            }))
        }
        LogicalPlan::GroupBy { input, keys, aggs, .. } => {
            let rdd = compile_row_major(core, input)?;
            let schema = input.schema();
            let key_idx: Vec<usize> =
                keys.iter().map(|k| schema.resolve(k)).collect::<Result<_>>()?;
            let specs = Arc::new(agg_specs(schema, aggs)?);
            let paired = rdd.map(move |row| {
                let key: Vec<KeyValue> =
                    key_idx.iter().map(|&i| KeyValue(row[i].clone())).collect();
                let states: Vec<AggState> = specs
                    .iter()
                    .map(|(a, idx)| AggState::create(a, idx.map(|i| &row[i])))
                    .collect();
                (key, states)
            });
            Ok(finish_group_by(paired, keys.len(), num_parts, false))
        }
        LogicalPlan::OrderBy { input, keys } => {
            let rdd = compile_row_major(core, input)?;
            // The row-major reference path always sorts on materialized
            // `SortKey`s — the baseline the normalized-key encoding's
            // differential battery compares against.
            compile_order_by(rdd, input.schema(), keys, num_parts, false)
        }
        LogicalPlan::ZipWithIndex { input, start, .. } => {
            let rdd = compile_row_major(core, input)?;
            let start = *start;
            Ok(rdd.zip_with_index().map(move |(mut row, i)| {
                row.push(Value::I64(start + i as i64));
                row
            }))
        }
        LogicalPlan::Limit { input, n } => {
            let rdd = compile_row_major(core, input)?;
            let rows = rdd.take(*n)?;
            Ok(Rdd::new(Arc::clone(core), Arc::new(FromPartitionsRdd::new(vec![rows]))))
        }
    }
}

/// Resolves aggregate input columns once, at compile time.
fn agg_specs(schema: &Arc<Schema>, aggs: &[(Agg, String)]) -> Result<Vec<(Agg, Option<usize>)>> {
    aggs.iter()
        .map(|(a, _)| Ok((a.clone(), a.input_col().map(|c| schema.resolve(c)).transpose()?)))
        .collect()
}

/// The shuffle + finish half of GROUP BY, shared by all physical paths
/// (the map sides differ; the wire format and merge logic must not).
///
/// `map_side_combined` declares the map side already aggregated per
/// partition (the vectorized kernel). The shuffle then skips both of its
/// combine passes — the map-side one (which would only re-hash every
/// already-unique key, the dominant cost at high key cardinality) *and*
/// the generic clone-heavy reduce-side merge, replaced by the
/// whole-bucket [`batch::merge_group_pairs`] reduce, which borrows the
/// bucket and clones one pair per distinct group instead of one per
/// record. Partitioning (`fx_hash` of the key), the
/// wire format, and the insertion-ordered merge semantics are identical on
/// every path, so output bytes are too.
fn finish_group_by(
    paired: Rdd<(Vec<KeyValue>, Vec<AggState>)>,
    nkeys: usize,
    num_parts: usize,
    map_side_combined: bool,
) -> Rdd<Row> {
    let merged = if map_side_combined {
        paired.partition_reduce_with_codec(
            num_parts,
            Arc::new(GroupPairCodec),
            Arc::new(batch::merge_group_pairs),
        )
    } else {
        paired.reduce_by_key_with_codec(
            |a, b| a.into_iter().zip(b).map(|(x, y)| x.merge(y)).collect(),
            num_parts,
            Arc::new(GroupPairCodec),
        )
    };
    merged.map(move |(key, states)| {
        let mut row: Row = Vec::with_capacity(nkeys + states.len());
        row.extend(key.into_iter().map(|k| k.0));
        row.extend(states.into_iter().map(|s| s.finish()));
        row
    })
}

/// Range-partitioned ORDER BY. `vectorized` selects the sort key
/// representation: the §4.7 normalized byte encoding
/// ([`batch::encode_row_sort_key`] — one flat memcmp-comparable buffer per
/// row, descending via complement, shared with the [`batch::sort_key_bytes`]
/// kernel), or the materialized per-row `Vec<SortKey>` reference. Both are
/// proven order- and tie-equivalent, so the range partitioner's sampling,
/// cut selection, and the stable local sort behave identically.
fn compile_order_by(
    rdd: Rdd<Row>,
    schema: &Arc<Schema>,
    keys: &[(String, SortDir)],
    num_parts: usize,
    vectorized: bool,
) -> Result<Rdd<Row>> {
    let sort_spec: Vec<(usize, SortDir)> =
        keys.iter().map(|(k, d)| Ok((schema.resolve(k)?, *d))).collect::<Result<_>>()?;
    if vectorized {
        return Ok(rdd.sort_by_with_codec(
            move |row| batch::encode_row_sort_key(row, &sort_spec),
            true,
            num_parts,
            Arc::new(RowCodec),
        ));
    }
    Ok(rdd.sort_by_with_codec(
        move |row| {
            sort_spec
                .iter()
                .map(|(i, d)| SortKey::new(row[*i].clone(), *d))
                .collect::<Vec<SortKey>>()
        },
        true,
        num_parts,
        Arc::new(RowCodec),
    ))
}

/// One operator of a fused columnar pipeline segment.
enum FusedOp {
    Project(Vec<BoundExpr>),
    Filter(BoundExpr),
    Explode {
        idx: usize,
    },
    /// The per-partition half of LIMIT: stop producing (and stop *pulling
    /// input*) once `n` rows have left this partition. The global cut
    /// happens after the segment via `take`.
    LocalLimit(usize),
}

/// Collapses a pending selection vector into the batch (one gather), for
/// operators that need positionally dense columns.
fn materialize(batch: &mut ColumnBatch, sel: &mut Option<Vec<u32>>) {
    if let Some(s) = sel.take() {
        *batch = batch.gather(&s);
    }
}

/// Peels the maximal fusable suffix of a plan: the operator chain (returned
/// in execution order), the global LIMIT cut if one heads the segment, and
/// the boundary node left below the chain. Pure analysis — the boundary is
/// *not* compiled here, so each caller compiles it exactly once, in
/// whatever shape (row source or kernel feed) it needs.
fn peel_ops(plan: &Arc<LogicalPlan>) -> Result<(Vec<FusedOp>, Option<usize>, &Arc<LogicalPlan>)> {
    let mut ops_rev: Vec<FusedOp> = Vec::new();
    let mut global_limit: Option<usize> = None;
    let mut node = plan;
    loop {
        match node.as_ref() {
            LogicalPlan::Project { input, exprs, .. } => {
                let bound: Vec<BoundExpr> =
                    exprs.iter().map(|e| e.expr.bind(input.schema())).collect::<Result<_>>()?;
                ops_rev.push(FusedOp::Project(bound));
                node = input;
            }
            LogicalPlan::Filter { input, predicate } => {
                ops_rev.push(FusedOp::Filter(predicate.bind(input.schema())?));
                node = input;
            }
            LogicalPlan::Explode { input, col, .. } => {
                ops_rev.push(FusedOp::Explode { idx: input.schema().resolve(col)? });
                node = input;
            }
            // A limit fuses only at the head of a segment: below other
            // fused ops its global cut would have to materialize anyway, so
            // it becomes a boundary instead (handled in compile_boundary).
            LogicalPlan::Limit { input, n } if ops_rev.is_empty() => {
                global_limit = Some(*n);
                ops_rev.push(FusedOp::LocalLimit(*n));
                node = input;
            }
            _ => break,
        }
    }
    ops_rev.reverse();
    Ok((ops_rev, global_limit, node))
}

/// A compiled fused pipeline segment: the operator chain plus the width of
/// the rows entering it. Shared between [`segment_rows`] (row-out
/// execution) and the vectorized GROUP BY map side, which keeps the
/// segment's output columnar and feeds it — selection vector and all —
/// straight into the aggregation kernel.
struct SegmentPlan {
    ops: Vec<FusedOp>,
    width: usize,
}

impl SegmentPlan {
    fn local_limit(&self) -> Option<usize> {
        self.ops.iter().find_map(|op| match op {
            FusedOp::LocalLimit(n) => Some(*n),
            _ => None,
        })
    }

    /// Runs every operator over one batch, returning the surviving batch
    /// and, if the trailing operators left one pending, a selection vector.
    ///
    /// Filters narrow a lazy selection vector instead of gathering
    /// (copying) every column per filter; the batch materializes only when
    /// a downstream operator needs positional storage, and the final
    /// emission reads straight through the selection.
    fn apply(
        &self,
        mut batch: ColumnBatch,
        remaining: &mut Option<usize>,
    ) -> (ColumnBatch, Option<Vec<u32>>) {
        let mut sel: Option<Vec<u32>> = None;
        for op in &self.ops {
            match op {
                FusedOp::Project(exprs) => {
                    materialize(&mut batch, &mut sel);
                    batch = batch::project(exprs, &batch);
                }
                FusedOp::Filter(p) => {
                    if p.has_udf() {
                        materialize(&mut batch, &mut sel);
                    }
                    sel = Some(batch::refine(p, &batch, sel.take()));
                }
                FusedOp::Explode { idx } => {
                    materialize(&mut batch, &mut sel);
                    batch = batch::explode(&batch, *idx);
                }
                FusedOp::LocalLimit(_) => {
                    materialize(&mut batch, &mut sel);
                    if let Some(rem) = remaining.as_mut() {
                        batch = batch.head(*rem);
                        *rem -= batch.len();
                    }
                }
            }
            if sel.as_ref().map(|s| s.len()).unwrap_or(batch.len()) == 0 {
                break;
            }
        }
        (batch, sel)
    }
}

/// Executes a fused segment over a row source, emitting rows: batches of
/// `ExecConf::batch_size` rows stream lazily through
/// [`SegmentPlan::apply`], and each partition reports its batch work once
/// when exhausted.
fn segment_rows(core: &Arc<Core>, source: Rdd<Row>, seg: Arc<SegmentPlan>) -> Rdd<Row> {
    let batch_size = core.conf.exec.batch_size;
    let events = Arc::clone(&core.events);
    source.map_partitions(move |_part, mut input: BoxIter<Row>| {
        let seg = Arc::clone(&seg);
        let events = Arc::clone(&events);
        // Per-call state (fresh on retries): the pending output rows of the
        // last batch, the remaining local-limit budget, and the counters
        // reported once per partition when the input is exhausted.
        let mut out: std::vec::IntoIter<Row> = Vec::new().into_iter();
        let mut remaining = seg.local_limit();
        let mut batches: u64 = 0;
        let mut rows_out: u64 = 0;
        let mut done = false;
        let iter = std::iter::from_fn(move || loop {
            if let Some(row) = out.next() {
                return Some(row);
            }
            if done {
                return None;
            }
            let mut buf: Vec<Row> = Vec::with_capacity(batch_size);
            if remaining != Some(0) {
                while buf.len() < batch_size {
                    match input.next() {
                        Some(r) => buf.push(r),
                        None => break,
                    }
                }
            }
            if buf.is_empty() {
                // Input exhausted (or limit satisfied): report the
                // partition's batch work exactly once.
                done = true;
                if batches > 0 {
                    events.emit(Event::ColumnarBatch {
                        fused_ops: seg.ops.len() as u64,
                        batches,
                        rows: rows_out,
                    });
                }
                return None;
            }
            let (batch, sel) = seg.apply(ColumnBatch::from_rows(seg.width, buf), &mut remaining);
            batches += 1;
            let out_rows = match sel {
                Some(s) => batch.to_rows_sel(&s),
                None => batch.to_rows(),
            };
            rows_out += out_rows.len() as u64;
            out = out_rows.into_iter();
        });
        Box::new(iter) as BoxIter<Row>
    })
}

/// Columnar compiler: peels the maximal fusable suffix of the plan
/// (Project/Filter/Explode chains, plus a segment-leading Limit), compiles
/// whatever is below it as a boundary, and executes the suffix as one fused
/// pass over [`ColumnBatch`]es of `ExecConf::batch_size` rows. With
/// `ExecConf::adaptive` on, a single-operator segment falls back to the row
/// interpreter once observed batch statistics say transposition costs more
/// than the kernel saves.
fn compile_columnar(core: &Arc<Core>, plan: &Arc<LogicalPlan>) -> Result<Rdd<Row>> {
    let (ops, global_limit, node) = peel_ops(plan)?;
    let source = compile_boundary(core, node)?;
    if ops.is_empty() {
        return Ok(source);
    }
    if global_limit.is_none() && ops.len() == 1 && adaptive_prefers_rows(core) {
        let op = ops.into_iter().next().expect("one fused op");
        return Ok(apply_op_row(source, op));
    }
    let seg = Arc::new(SegmentPlan { ops, width: node.schema().len() });
    let fused = segment_rows(core, source, seg);
    match global_limit {
        Some(n) => {
            let rows = fused.take(n)?;
            Ok(Rdd::new(Arc::clone(core), Arc::new(FromPartitionsRdd::new(vec![rows]))))
        }
        None => Ok(fused),
    }
}

/// Whether the adaptive heuristic currently prefers the row interpreter for
/// *short* (single-operator) pipeline segments: once enough batches have
/// flowed through this context to trust the statistics (`>= 16`), a mean
/// batch occupancy under 8 rows means the row↔column transposition
/// dominates whatever the kernel saves. Multi-operator fusion and the
/// pre-aggregating GROUP BY kernel always stay columnar — their win does
/// not hinge on occupancy the same way. Derived from the [`Event`] stream's
/// `columnar_batches` / `columnar_rows` counters, so the heuristic works
/// with or without an event collector attached.
fn adaptive_prefers_rows(core: &Arc<Core>) -> bool {
    use std::sync::atomic::Ordering;
    if !core.conf.exec.adaptive {
        return false;
    }
    let batches = core.metrics.columnar_batches.load(Ordering::Relaxed);
    if batches < 16 {
        return false;
    }
    core.metrics.columnar_rows.load(Ordering::Relaxed) / batches < 8
}

/// Executes one fused operator with the row interpreter — the adaptive
/// fallback target for segments too short to amortize transposition.
fn apply_op_row(rdd: Rdd<Row>, op: FusedOp) -> Rdd<Row> {
    match op {
        FusedOp::Project(bound) => {
            rdd.map(move |row| bound.iter().map(|b| b.eval(&row)).collect::<Row>())
        }
        FusedOp::Filter(p) => rdd.filter(move |row| p.eval_predicate(row)),
        FusedOp::Explode { idx } => rdd.flat_map(move |row| {
            let items: Vec<Row> = match &row[idx] {
                Value::List(l) => l
                    .iter()
                    .map(|v| {
                        let mut r = row.clone();
                        r[idx] = v.clone();
                        r
                    })
                    .collect(),
                _ => Vec::new(),
            };
            items
        }),
        // LocalLimit is only ever peeled together with a global limit,
        // which routes around the adaptive fallback.
        FusedOp::LocalLimit(_) => unreachable!("a lone LocalLimit implies a global limit"),
    }
}

/// Compiles a node that terminates a fused segment: sources, shuffles, and
/// operators whose row machinery is inherently row-ordered. Inputs recurse
/// through [`compile_columnar`], so every pipeline segment of the plan
/// fuses independently.
fn compile_boundary(core: &Arc<Core>, plan: &Arc<LogicalPlan>) -> Result<Rdd<Row>> {
    let num_parts = core.conf.default_parallelism;
    match plan.as_ref() {
        LogicalPlan::FromRdd { rows, .. } => Ok(rows.clone()),
        LogicalPlan::GroupBy { input, keys, aggs, .. } => {
            let vectorized = core.conf.exec.vectorized;
            let paired = if vectorized {
                compile_group_by_vectorized(core, input, keys, aggs)?
            } else {
                compile_group_by_batched(core, input, keys, aggs)?
            };
            // Only the vectorized kernel pre-aggregates its partition; the
            // batched path emits one pair per row and *needs* the shuffle's
            // map-side combine.
            Ok(finish_group_by(paired, keys.len(), num_parts, vectorized))
        }
        LogicalPlan::OrderBy { input, keys } => {
            let rdd = compile_columnar(core, input)?;
            compile_order_by(rdd, input.schema(), keys, num_parts, core.conf.exec.vectorized)
        }
        LogicalPlan::ZipWithIndex { input, start, .. } => {
            let rdd = compile_columnar(core, input)?;
            let start = *start;
            Ok(rdd.zip_with_index().map(move |(mut row, i)| {
                row.push(Value::I64(start + i as i64));
                row
            }))
        }
        // A limit below other fused ops: re-enter the columnar compiler,
        // which peels it as the head of its own (fresh) segment.
        LogicalPlan::Limit { .. } => compile_columnar(core, plan),
        LogicalPlan::Project { .. } | LogicalPlan::Filter { .. } | LogicalPlan::Explode { .. } => {
            unreachable!("fusable operators are peeled before compile_boundary")
        }
    }
}

/// PR 8's batched GROUP BY map side (`ExecConf::vectorized` off): batches
/// the partition, materializes one `(Vec<KeyValue>, Vec<AggState>)` pair
/// per *row*, and leaves per-partition aggregation to the shuffle's
/// map-side combine. Kept as the mid-point of the three-way aggregation
/// differential (row-major / batched / vectorized).
fn compile_group_by_batched(
    core: &Arc<Core>,
    input: &Arc<LogicalPlan>,
    keys: &[String],
    aggs: &[(Agg, String)],
) -> Result<Rdd<(Vec<KeyValue>, Vec<AggState>)>> {
    let rdd = compile_columnar(core, input)?;
    let schema = input.schema();
    let key_idx: Vec<usize> = keys.iter().map(|k| schema.resolve(k)).collect::<Result<_>>()?;
    let specs = Arc::new(agg_specs(schema, aggs)?);
    let width = schema.len();
    let batch_size = core.conf.exec.batch_size;
    let events = Arc::clone(&core.events);
    // Columnar map side: batch the partition and materialize the keys per
    // batch; the shuffle pair format and the merge/finish phases are shared
    // with the row-major path.
    Ok(rdd.map_partitions(move |_part, mut input: BoxIter<Row>| {
        let specs = Arc::clone(&specs);
        let key_idx = key_idx.clone();
        let events = Arc::clone(&events);
        let mut out: std::vec::IntoIter<(Vec<KeyValue>, Vec<AggState>)> = Vec::new().into_iter();
        let mut batches: u64 = 0;
        let mut rows_in: u64 = 0;
        let mut done = false;
        let iter = std::iter::from_fn(move || loop {
            if let Some(pair) = out.next() {
                return Some(pair);
            }
            if done {
                return None;
            }
            let mut buf: Vec<Row> = Vec::with_capacity(batch_size);
            while buf.len() < batch_size {
                match input.next() {
                    Some(r) => buf.push(r),
                    None => break,
                }
            }
            if buf.is_empty() {
                done = true;
                if batches > 0 {
                    events.emit(Event::ColumnarBatch { fused_ops: 1, batches, rows: rows_in });
                }
                return None;
            }
            let batch = ColumnBatch::from_rows(width, buf);
            let keys = batch::group_keys(&batch, &key_idx);
            batches += 1;
            rows_in += batch.len() as u64;
            let pairs: Vec<(Vec<KeyValue>, Vec<AggState>)> = keys
                .into_iter()
                .enumerate()
                .map(|(i, key)| {
                    let states: Vec<AggState> = specs
                        .iter()
                        .map(|(a, idx)| {
                            let v = idx.map(|c| batch.column(c).get(i));
                            AggState::create(a, v.as_ref())
                        })
                        .collect();
                    (key, states)
                })
                .collect();
            out = pairs.into_iter();
        });
        Box::new(iter) as BoxIter<(Vec<KeyValue>, Vec<AggState>)>
    }))
}

/// The vectorized GROUP BY map side: the fused segment below the
/// aggregation (if any) stays columnar — its output batch plus selection
/// vector feeds [`batch::GroupByKernel`] directly, one transposition
/// instead of two — and the kernel pre-aggregates the whole partition, so
/// one pair per **distinct group** reaches the shuffle, in first-occurrence
/// order (exactly what the row path's insertion-ordered map-side combine
/// emits, keeping all physical paths byte-identical).
fn compile_group_by_vectorized(
    core: &Arc<Core>,
    input: &Arc<LogicalPlan>,
    keys: &[String],
    aggs: &[(Agg, String)],
) -> Result<Rdd<(Vec<KeyValue>, Vec<AggState>)>> {
    let schema = input.schema();
    let key_idx: Vec<usize> = keys.iter().map(|k| schema.resolve(k)).collect::<Result<_>>()?;
    let specs = Arc::new(agg_specs(schema, aggs)?);
    let (ops, global_limit, node) = peel_ops(input)?;
    // A global LIMIT below the aggregation cannot be absorbed into the
    // kernel pass (its cut is cross-partition), so that segment compiles as
    // its own pipeline; otherwise the peeled segment is handed to the
    // kernel loop uncompiled and its output never becomes rows.
    let (rdd, seg) = if ops.is_empty() || global_limit.is_some() {
        (compile_columnar(core, input)?, None)
    } else {
        let width = node.schema().len();
        (compile_boundary(core, node)?, Some(Arc::new(SegmentPlan { ops, width })))
    };
    if seg.is_none() && adaptive_prefers_rows(core) {
        // Adaptive fallback: tiny batches make even the kernel's single
        // transposition a loss; pair per row and let the shuffle's map-side
        // combine aggregate, as the row-major reference does.
        return Ok(rdd.map(move |row| {
            let key: Vec<KeyValue> = key_idx.iter().map(|&i| KeyValue(row[i].clone())).collect();
            let states: Vec<AggState> =
                specs.iter().map(|(a, idx)| AggState::create(a, idx.map(|i| &row[i]))).collect();
            (key, states)
        }));
    }
    let width = seg.as_ref().map(|s| s.width).unwrap_or(schema.len());
    let batch_size = core.conf.exec.batch_size;
    let events = Arc::clone(&core.events);
    Ok(rdd.map_partitions(move |_part, mut input: BoxIter<Row>| {
        // Eager per-partition aggregation (a fresh kernel per call, so task
        // retries restart cleanly): every batch folds into the group table,
        // and the partition emits one pair per distinct group at the end.
        let mut kernel = batch::GroupByKernel::new(key_idx.clone(), &specs);
        let mut batches: u64 = 0;
        loop {
            let mut buf: Vec<Row> = Vec::with_capacity(batch_size);
            while buf.len() < batch_size {
                match input.next() {
                    Some(r) => buf.push(r),
                    None => break,
                }
            }
            if buf.is_empty() {
                break;
            }
            batches += 1;
            let batch = ColumnBatch::from_rows(width, buf);
            match &seg {
                Some(seg) => {
                    // LocalLimit never appears in a handed-off segment (it
                    // is only peeled together with a global limit, routed
                    // above), so there is no limit budget to thread.
                    let (batch, sel) = seg.apply(batch, &mut None);
                    kernel.push_batch(&batch, sel.as_deref());
                }
                None => kernel.push_batch(&batch, None),
            }
        }
        if batches > 0 {
            events.emit(Event::ColumnarBatch {
                fused_ops: seg.as_ref().map(|s| s.ops.len() as u64).unwrap_or(1),
                batches,
                rows: kernel.rows_in(),
            });
            events.emit(Event::AggBatch {
                batches,
                rows_in: kernel.rows_in(),
                groups_out: kernel.groups_out(),
            });
        }
        Box::new(kernel.finish().into_iter()) as BoxIter<(Vec<KeyValue>, Vec<AggState>)>
    }))
}

/// The length of the longest fused pipeline segment compilation would
/// produce for this plan: Project/Filter/Explode chains count one op each,
/// and a Limit always heads a fresh segment. `>= 2` means at least one
/// genuinely fused (multi-operator single-pass) segment exists — the signal
/// behind EXPLAIN ANALYZE's `dataframe (fused)` mode hint.
pub fn fused_pipeline_ops(plan: &Arc<LogicalPlan>) -> usize {
    fn walk(node: &Arc<LogicalPlan>, run: usize, best: &mut usize) {
        match node.as_ref() {
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Explode { input, .. } => {
                *best = (*best).max(run + 1);
                walk(input, run + 1, best);
            }
            LogicalPlan::Limit { input, .. } => {
                // Mid-chain limits become boundaries and restart the
                // segment at themselves (see compile_columnar).
                *best = (*best).max(1);
                walk(input, 1, best);
            }
            LogicalPlan::FromRdd { .. } => {}
            LogicalPlan::GroupBy { input, .. }
            | LogicalPlan::OrderBy { input, .. }
            | LogicalPlan::ZipWithIndex { input, .. } => walk(input, 0, best),
        }
    }
    let mut best = 0;
    walk(plan, 0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataframe::{CmpOp, DataFrame};
    use crate::{SparkliteConf, SparkliteContext};

    fn df(ctx: &SparkliteContext) -> DataFrame {
        let schema =
            Schema::new(vec![Field::new("a", DataType::I64), Field::new("b", DataType::I64)]);
        let rows: Vec<Row> = (0..20).map(|i| vec![Value::I64(i), Value::I64(i * 10)]).collect();
        DataFrame::from_rows(ctx, schema, rows, 3).unwrap()
    }

    fn count_nodes(plan: &Arc<LogicalPlan>, pred: &dyn Fn(&LogicalPlan) -> bool) -> usize {
        let own = pred(plan) as usize;
        own + match plan.as_ref() {
            LogicalPlan::FromRdd { .. } => 0,
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Explode { input, .. }
            | LogicalPlan::GroupBy { input, .. }
            | LogicalPlan::OrderBy { input, .. }
            | LogicalPlan::ZipWithIndex { input, .. }
            | LogicalPlan::Limit { input, .. } => count_nodes(input, pred),
        }
    }

    #[test]
    fn filters_merge() {
        let ctx = SparkliteContext::new(SparkliteConf::default().with_executors(2));
        let d = df(&ctx)
            .filter(Expr::cmp(Expr::col("a"), CmpOp::Gt, Expr::lit(Value::I64(5))))
            .unwrap()
            .filter(Expr::cmp(Expr::col("a"), CmpOp::Lt, Expr::lit(Value::I64(15))))
            .unwrap();
        let opt = optimize(Arc::clone(d.plan()));
        opt.validate().unwrap();
        assert_eq!(count_nodes(&opt, &|p| matches!(p, LogicalPlan::Filter { .. })), 1);
        assert_eq!(d.count().unwrap(), 9);
    }

    #[test]
    fn filter_pushes_below_sort() {
        let ctx = SparkliteContext::new(SparkliteConf::default().with_executors(2));
        let d = df(&ctx)
            .order_by(vec![("a".into(), SortDir::desc())])
            .unwrap()
            .filter(Expr::cmp(Expr::col("a"), CmpOp::Lt, Expr::lit(Value::I64(3))))
            .unwrap();
        let opt = optimize(Arc::clone(d.plan()));
        opt.validate().unwrap();
        // The root must now be the sort, with the filter inside.
        assert!(matches!(opt.as_ref(), LogicalPlan::OrderBy { .. }));
        let rows = d.collect_rows().unwrap();
        assert_eq!(rows.iter().map(|r| r[0].as_i64().unwrap()).collect::<Vec<_>>(), vec![2, 1, 0]);
    }

    #[test]
    fn projections_fuse() {
        let ctx = SparkliteContext::new(SparkliteConf::default().with_executors(2));
        let d = df(&ctx)
            .with_column(
                "c",
                Expr::num(Expr::col("a"), crate::dataframe::NumOp::Add, Expr::col("b")),
                DataType::I64,
            )
            .unwrap()
            .select(vec![NamedExpr::passthrough("c", DataType::I64)])
            .unwrap();
        let opt = optimize(Arc::clone(d.plan()));
        opt.validate().unwrap();
        assert_eq!(count_nodes(&opt, &|p| matches!(p, LogicalPlan::Project { .. })), 1);
        let rows = d.collect_rows().unwrap();
        assert_eq!(rows[3][0], Value::I64(33));
    }

    #[test]
    fn pruning_drops_unused_projected_columns() {
        let ctx = SparkliteContext::new(SparkliteConf::default().with_executors(2));
        // Build Project(a, b, big) -> GroupBy(keys=[a], count) — `big` and
        // `b` are never used, so pruning should remove them from the
        // projection.
        let base = df(&ctx);
        let wide = base
            .with_column(
                "big",
                Expr::udf("expensive", Some(vec!["b".into()]), |s, r| {
                    let i = s.index_of("b").expect("b exists");
                    r[i].clone()
                }),
                DataType::Any,
            )
            .unwrap();
        let grouped = wide.group_by(&["a"], vec![(Agg::Count, "n".into())]).unwrap();
        let opt = optimize(Arc::clone(grouped.plan()));
        opt.validate().unwrap();
        fn find_project(plan: &Arc<LogicalPlan>) -> Option<usize> {
            match plan.as_ref() {
                LogicalPlan::Project { exprs, .. } => Some(exprs.len()),
                LogicalPlan::FromRdd { .. } => None,
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Explode { input, .. }
                | LogicalPlan::GroupBy { input, .. }
                | LogicalPlan::OrderBy { input, .. }
                | LogicalPlan::ZipWithIndex { input, .. }
                | LogicalPlan::Limit { input, .. } => find_project(input),
            }
        }
        assert_eq!(find_project(&opt), Some(1), "only `a` should survive pruning");
        assert_eq!(grouped.count().unwrap(), 20);
    }

    #[test]
    fn optimized_and_unoptimized_agree() {
        let ctx = SparkliteContext::new(SparkliteConf::default().with_executors(4));
        let d = df(&ctx)
            .with_column(
                "c",
                Expr::num(Expr::col("a"), crate::dataframe::NumOp::Mul, Expr::lit(Value::I64(3))),
                DataType::I64,
            )
            .unwrap()
            .filter(Expr::cmp(Expr::col("c"), CmpOp::Ge, Expr::lit(Value::I64(30))))
            .unwrap()
            .order_by(vec![("c".into(), SortDir::desc())])
            .unwrap();
        optimize(Arc::clone(d.plan())).validate().unwrap();
        // Compile without optimization.
        let raw = compile(ctx.core(), d.plan()).unwrap().collect().unwrap();
        let opt = d.collect_rows().unwrap();
        assert_eq!(raw, opt);
        assert!(!opt.is_empty());
    }

    #[test]
    fn validate_rejects_hand_built_invalid_plans() {
        let ctx = SparkliteContext::new(SparkliteConf::default().with_executors(2));
        let base = Arc::clone(df(&ctx).plan());

        // A projection whose declared schema disagrees with its expressions.
        let bad_project = LogicalPlan::Project {
            input: Arc::clone(&base),
            exprs: vec![NamedExpr::passthrough("a", DataType::I64)],
            schema: Schema::new(vec![
                Field::new("a", DataType::I64),
                Field::new("phantom", DataType::Str),
            ]),
        };
        let err = bad_project.validate().unwrap_err().to_string();
        assert!(err.contains("invalid plan"), "unexpected error: {err}");

        // A filter whose predicate references a column the input lacks
        // (binding errors surface as "unknown column").
        let bad_filter = LogicalPlan::Filter {
            input: Arc::clone(&base),
            predicate: Expr::cmp(Expr::col("missing"), CmpOp::Gt, Expr::lit(Value::I64(0))),
        };
        let err = bad_filter.validate().unwrap_err().to_string();
        assert!(err.contains("unknown column"), "unexpected error: {err}");

        // A sort on a nonexistent key.
        let bad_sort =
            LogicalPlan::OrderBy { input: base, keys: vec![("nope".into(), SortDir::asc())] };
        assert!(bad_sort.validate().is_err());
    }

    #[test]
    fn validate_accepts_every_constructor_built_plan() {
        let ctx = SparkliteContext::new(SparkliteConf::default().with_executors(2));
        let d = df(&ctx)
            .with_column(
                "c",
                Expr::num(Expr::col("a"), crate::dataframe::NumOp::Add, Expr::col("b")),
                DataType::I64,
            )
            .unwrap()
            .filter(Expr::cmp(Expr::col("c"), CmpOp::Gt, Expr::lit(Value::I64(5))))
            .unwrap()
            .zip_with_index("idx", 0)
            .unwrap()
            .group_by(&["a"], vec![(Agg::Count, "n".into())])
            .unwrap()
            .order_by(vec![("a".into(), SortDir::asc())])
            .unwrap()
            .limit(5);
        d.plan().validate().unwrap();
        optimize(Arc::clone(d.plan())).validate().unwrap();
    }

    #[test]
    fn agg_states_cover_sql_semantics() {
        let ctx = SparkliteContext::new(SparkliteConf::default().with_executors(2));
        let schema =
            Schema::new(vec![Field::new("k", DataType::I64), Field::new("v", DataType::I64)]);
        let rows = vec![
            vec![Value::I64(1), Value::I64(10)],
            vec![Value::I64(1), Value::Null],
            vec![Value::I64(1), Value::I64(30)],
        ];
        let d = DataFrame::from_rows(&ctx, schema, rows, 2).unwrap();
        let g = d
            .group_by(
                &["k"],
                vec![
                    (Agg::Count, "cnt".into()),
                    (Agg::CountCol("v".into()), "cntv".into()),
                    (Agg::Sum("v".into()), "sum".into()),
                    (Agg::Avg("v".into()), "avg".into()),
                    (Agg::Min("v".into()), "min".into()),
                    (Agg::Max("v".into()), "max".into()),
                ],
            )
            .unwrap();
        let rows = g.collect_rows().unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r[1], Value::I64(3)); // COUNT(*) counts nulls
        assert_eq!(r[2], Value::I64(2)); // COUNT(v) does not
        assert_eq!(r[3], Value::I64(40));
        assert_eq!(r[4], Value::F64(20.0));
        assert_eq!(r[5], Value::I64(10));
        assert_eq!(r[6], Value::I64(30));
    }
}
