//! Columnar batches and vectorized operator kernels.
//!
//! A [`ColumnBatch`] stores a slice of rows column-major: `I64`/`F64`
//! columns as native vectors, booleans as bitsets, strings as a byte arena
//! with an offset array, and everything else (lists, binaries, mixed-type
//! columns) as boxed [`Value`]s — each paired with a validity bitmap marking
//! non-NULL slots. Kernels evaluate [`BoundExpr`]s over whole batches with
//! typed fast paths, filter through selection vectors, and materialize the
//! §4.7 group/sort key encodings per batch. The physical plan
//! ([`super::plan::compile`]) converts rows to batches after every shuffle
//! or RDD boundary and back before the next one, so [`super::RowCodec`]
//! stays the only wire/persist format.
//!
//! Every kernel replicates the row interpreter's semantics *exactly* — the
//! shared primitives (`truth`, `eval_cmp`, `eval_num`) live in
//! [`super::expr`] and the row-vs-columnar differential battery
//! (`tests/columnar_diff.rs`) pins byte-identical results.
//!
//! Invariant threaded through everything: a slot's validity bit is clear
//! **iff** its logical value is `NULL`. `Column::get` reconstructs `NULL`
//! from a clear bit, so typed storage never needs a NULL sentinel.

use super::expr::{self, value_cmp, BoundExpr, CmpOp, KeyValue, NumOp, SortDir, SortKey};
use super::plan::{Agg, AggState};
use super::{Row, Value};
use crate::rdd::util::{fx_hash, fx_hash_bytes};
use std::cmp::Ordering;
use std::sync::Arc;

/// A packed bitset; doubles as validity bitmap and boolean column storage.
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn with_capacity(bits: usize) -> Bitmap {
        Bitmap { words: Vec::with_capacity(bits.div_ceil(64)), len: 0 }
    }

    /// A bitmap of `len` identical bits.
    pub fn filled(len: usize, bit: bool) -> Bitmap {
        let word = if bit { u64::MAX } else { 0 };
        Bitmap { words: vec![word; len.div_ceil(64)], len }
    }

    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of bounds ({})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn count_ones(&self) -> usize {
        let mut n: usize = self.words.iter().map(|w| w.count_ones() as usize).sum();
        // Mask out garbage bits `filled(len, true)` leaves past `len`.
        if !self.len.is_multiple_of(64) {
            if let Some(last) = self.words.last() {
                n -= (last >> (self.len % 64)).count_ones() as usize;
            }
        }
        n
    }
}

/// A byte arena of UTF-8 strings with an offset array: `offsets[i]..
/// offsets[i+1]` delimits string `i`. One allocation per column instead of
/// one `Arc<str>` per cell.
#[derive(Debug, Clone)]
pub struct StrArena {
    bytes: Vec<u8>,
    offsets: Vec<usize>,
}

impl Default for StrArena {
    fn default() -> Self {
        StrArena { bytes: Vec::new(), offsets: vec![0] }
    }
}

impl StrArena {
    pub fn push(&mut self, s: &str) {
        self.bytes.extend_from_slice(s.as_bytes());
        self.offsets.push(self.bytes.len());
    }

    pub fn get(&self, i: usize) -> &str {
        let slice = &self.bytes[self.offsets[i]..self.offsets[i + 1]];
        std::str::from_utf8(slice).expect("arena bytes come from &str pushes")
    }

    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// The offset array, exposed so tests can check its integrity.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

/// Physical storage of one column's non-NULL slots. Invalid (NULL) slots
/// hold an arbitrary placeholder in typed storage and `Value::Null` in
/// boxed storage.
#[derive(Debug, Clone)]
pub enum ColumnData {
    I64(Vec<i64>),
    F64(Vec<f64>),
    Bool(Bitmap),
    Str(StrArena),
    /// Fallback for lists, binaries and mixed-type columns.
    Boxed(Vec<Value>),
}

/// One column of a batch: typed storage plus a validity bitmap.
#[derive(Debug, Clone)]
pub struct Column {
    validity: Bitmap,
    data: ColumnData,
}

/// Typed storage being grown one value at a time; [`BuilderState::Empty`]
/// means only NULLs have been seen so far.
enum BuilderState {
    Empty,
    I64(Vec<i64>),
    F64(Vec<f64>),
    Bool(Bitmap),
    Str(StrArena),
    Boxed(Vec<Value>),
}

impl BuilderState {
    /// Rebuilds every slot pushed so far as a boxed value (the degrade path
    /// when a column turns out to be mixed-type).
    fn reconstruct(self, validity: &Bitmap) -> Vec<Value> {
        let n = validity.len();
        let mut out = Vec::with_capacity(n + 1);
        let valid = |i: usize| validity.get(i);
        match self {
            BuilderState::Empty => out.extend((0..n).map(|_| Value::Null)),
            BuilderState::I64(v) => {
                out.extend((0..n).map(|i| if valid(i) { Value::I64(v[i]) } else { Value::Null }))
            }
            BuilderState::F64(v) => {
                out.extend((0..n).map(|i| if valid(i) { Value::F64(v[i]) } else { Value::Null }))
            }
            BuilderState::Bool(b) => {
                out.extend(
                    (0..n).map(|i| if valid(i) { Value::Bool(b.get(i)) } else { Value::Null }),
                )
            }
            BuilderState::Str(a) => {
                out.extend(
                    (0..n).map(|i| if valid(i) { Value::str(a.get(i)) } else { Value::Null }),
                )
            }
            BuilderState::Boxed(v) => return v,
        }
        out
    }
}

/// Single-pass adaptive column builder: the first non-NULL value picks the
/// typed storage, every later value takes one match, and a type mismatch
/// degrades the column to boxed storage at most once. This is the hot path
/// of the row→columnar boundary, so it never buffers values or rescans.
pub struct ColumnBuilder {
    validity: Bitmap,
    state: BuilderState,
}

impl ColumnBuilder {
    pub fn with_capacity(n: usize) -> ColumnBuilder {
        ColumnBuilder { validity: Bitmap::with_capacity(n), state: BuilderState::Empty }
    }

    pub fn push(&mut self, v: Value) {
        if v.is_null() {
            match &mut self.state {
                BuilderState::Empty => {}
                BuilderState::I64(o) => o.push(0),
                BuilderState::F64(o) => o.push(0.0),
                BuilderState::Bool(o) => o.push(false),
                BuilderState::Str(o) => o.push(""),
                BuilderState::Boxed(o) => o.push(Value::Null),
            }
            self.validity.push(false);
            return;
        }
        // Fast path: the value matches the storage already chosen.
        let v = match (&mut self.state, v) {
            (BuilderState::I64(o), Value::I64(x)) => {
                o.push(x);
                self.validity.push(true);
                return;
            }
            (BuilderState::F64(o), Value::F64(x)) => {
                o.push(x);
                self.validity.push(true);
                return;
            }
            (BuilderState::Bool(o), Value::Bool(x)) => {
                o.push(x);
                self.validity.push(true);
                return;
            }
            (BuilderState::Str(o), Value::Str(s)) => {
                o.push(&s);
                self.validity.push(true);
                return;
            }
            (BuilderState::Boxed(o), v) => {
                o.push(v);
                self.validity.push(true);
                return;
            }
            (_, v) => v,
        };
        // Slow path, at most twice per column: the first non-NULL value
        // initializes typed storage (backfilling placeholders for leading
        // NULLs), and a mismatched value degrades the column to boxed.
        let nulls = self.validity.len();
        self.state = match (std::mem::replace(&mut self.state, BuilderState::Empty), v) {
            (BuilderState::Empty, Value::I64(x)) => {
                let mut o = vec![0i64; nulls];
                o.push(x);
                BuilderState::I64(o)
            }
            (BuilderState::Empty, Value::F64(x)) => {
                let mut o = vec![0.0f64; nulls];
                o.push(x);
                BuilderState::F64(o)
            }
            (BuilderState::Empty, Value::Bool(x)) => {
                let mut o = Bitmap::filled(nulls, false);
                o.push(x);
                BuilderState::Bool(o)
            }
            (BuilderState::Empty, Value::Str(s)) => {
                let mut o = StrArena::default();
                for _ in 0..nulls {
                    o.push("");
                }
                o.push(&s);
                BuilderState::Str(o)
            }
            (BuilderState::Empty, v) => {
                let mut o = vec![Value::Null; nulls];
                o.push(v);
                BuilderState::Boxed(o)
            }
            (state, v) => {
                let mut o = state.reconstruct(&self.validity);
                o.push(v);
                BuilderState::Boxed(o)
            }
        };
        self.validity.push(true);
    }

    pub fn finish(self) -> Column {
        let n = self.validity.len();
        let data = match self.state {
            // All-NULL (or empty) columns take the cheapest typed layout.
            BuilderState::Empty => ColumnData::I64(vec![0; n]),
            BuilderState::I64(o) => ColumnData::I64(o),
            BuilderState::F64(o) => ColumnData::F64(o),
            BuilderState::Bool(o) => ColumnData::Bool(o),
            BuilderState::Str(o) => ColumnData::Str(o),
            BuilderState::Boxed(o) => ColumnData::Boxed(o),
        };
        Column { validity: self.validity, data }
    }
}

impl Column {
    /// Builds a column from row values, choosing the densest representation
    /// the actual data admits: a column whose non-NULL values are all one
    /// scalar type gets native storage; anything else falls back to boxed.
    pub fn from_values(values: Vec<Value>) -> Column {
        let mut b = ColumnBuilder::with_capacity(values.len());
        for v in values {
            b.push(v);
        }
        b.finish()
    }

    /// A column repeating `v` for `n` rows (literal broadcast).
    pub fn broadcast(v: &Value, n: usize) -> Column {
        let (validity, data) = match v {
            Value::Null => (Bitmap::filled(n, false), ColumnData::I64(vec![0; n])),
            Value::I64(x) => (Bitmap::filled(n, true), ColumnData::I64(vec![*x; n])),
            Value::F64(x) => (Bitmap::filled(n, true), ColumnData::F64(vec![*x; n])),
            Value::Bool(b) => (Bitmap::filled(n, true), ColumnData::Bool(Bitmap::filled(n, *b))),
            Value::Str(s) => {
                let mut arena = StrArena::default();
                for _ in 0..n {
                    arena.push(s);
                }
                (Bitmap::filled(n, true), ColumnData::Str(arena))
            }
            other => (Bitmap::filled(n, true), ColumnData::Boxed(vec![other.clone(); n])),
        };
        Column { validity, data }
    }

    pub fn len(&self) -> usize {
        self.validity.len()
    }

    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.get(i)
    }

    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Reconstructs the logical value of slot `i`.
    pub fn get(&self, i: usize) -> Value {
        if !self.validity.get(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::I64(v) => Value::I64(v[i]),
            ColumnData::F64(v) => Value::F64(v[i]),
            ColumnData::Bool(b) => Value::Bool(b.get(i)),
            ColumnData::Str(a) => Value::str(a.get(i)),
            ColumnData::Boxed(v) => v[i].clone(),
        }
    }

    /// Copies the selected slots, in selection order, into a new column —
    /// the materialization half of a selection vector.
    pub fn gather(&self, sel: &[u32]) -> Column {
        let mut validity = Bitmap::with_capacity(sel.len());
        for &i in sel {
            validity.push(self.validity.get(i as usize));
        }
        let data = match &self.data {
            ColumnData::I64(v) => ColumnData::I64(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::F64(v) => ColumnData::F64(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Bool(b) => {
                let mut out = Bitmap::with_capacity(sel.len());
                for &i in sel {
                    out.push(b.get(i as usize));
                }
                ColumnData::Bool(out)
            }
            ColumnData::Str(a) => {
                let mut out = StrArena::default();
                for &i in sel {
                    out.push(a.get(i as usize));
                }
                ColumnData::Str(out)
            }
            ColumnData::Boxed(v) => {
                ColumnData::Boxed(sel.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        Column { validity, data }
    }
}

/// A column-major slice of rows: the unit of vectorized execution.
///
/// Columns are reference-counted so operators share rather than copy them:
/// a projection that passes a column through untouched (`with_column` keeps
/// every existing column) is a pointer bump, not a data copy. Kernels always
/// build fresh columns, so the sharing is copy-on-write by construction.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    len: usize,
    columns: Vec<Arc<Column>>,
}

impl ColumnBatch {
    /// Transposes rows into columns in a single pass. `width` fixes the
    /// column count (rows may be empty); every row must have exactly
    /// `width` values.
    pub fn from_rows(width: usize, rows: Vec<Row>) -> ColumnBatch {
        let len = rows.len();
        let mut builders: Vec<ColumnBuilder> =
            (0..width).map(|_| ColumnBuilder::with_capacity(len)).collect();
        for row in rows {
            debug_assert_eq!(row.len(), width, "row arity does not match batch width");
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v);
            }
        }
        let columns = builders.into_iter().map(|b| Arc::new(b.finish())).collect();
        ColumnBatch { len, columns }
    }

    pub fn from_columns(columns: Vec<Column>) -> ColumnBatch {
        let len = columns.first().map(|c| c.len()).unwrap_or(0);
        debug_assert!(columns.iter().all(|c| c.len() == len), "ragged batch");
        ColumnBatch { len, columns: columns.into_iter().map(Arc::new).collect() }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn width(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Reconstructs row `i`.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Transposes back to rows (the shuffle/RDD boundary conversion).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Transposes only the selected slots back to rows, in selection order —
    /// lets a fused pipeline emit a filtered batch without first gathering
    /// every column.
    pub fn to_rows_sel(&self, sel: &[u32]) -> Vec<Row> {
        sel.iter().map(|&i| self.row(i as usize)).collect()
    }

    /// Applies a selection vector to every column.
    pub fn gather(&self, sel: &[u32]) -> ColumnBatch {
        ColumnBatch {
            len: sel.len(),
            columns: self.columns.iter().map(|c| Arc::new(c.gather(sel))).collect(),
        }
    }

    /// The first `n` rows (the per-partition half of LIMIT).
    pub fn head(&self, n: usize) -> ColumnBatch {
        if n >= self.len {
            return self.clone();
        }
        let sel: Vec<u32> = (0..n as u32).collect();
        self.gather(&sel)
    }
}

// ---------------------------------------------------------------------------
// Expression kernels
// ---------------------------------------------------------------------------

/// The SQL truth value of slot `i` — `Some(bool)` only for valid booleans,
/// mirroring [`expr::truth`] on the reconstructed value.
fn truth_at(c: &Column, i: usize) -> Option<bool> {
    if !c.validity.get(i) {
        return None;
    }
    match &c.data {
        ColumnData::Bool(b) => Some(b.get(i)),
        ColumnData::Boxed(v) => expr::truth(&v[i]),
        _ => None,
    }
}

/// Builder for boolean result columns where some slots are NULL.
struct BoolBuilder {
    validity: Bitmap,
    bits: Bitmap,
}

impl BoolBuilder {
    fn with_capacity(n: usize) -> BoolBuilder {
        BoolBuilder { validity: Bitmap::with_capacity(n), bits: Bitmap::with_capacity(n) }
    }

    fn push(&mut self, v: Option<bool>) {
        self.validity.push(v.is_some());
        self.bits.push(v.unwrap_or(false));
    }

    /// Pushes a `Value` known to be `Bool` or `Null` (what `eval_cmp` and
    /// the three-valued connectives produce).
    fn push_value(&mut self, v: Value) {
        self.push(match v {
            Value::Bool(b) => Some(b),
            _ => None,
        })
    }

    fn finish(self) -> Column {
        Column { validity: self.validity, data: ColumnData::Bool(self.bits) }
    }
}

fn ord_to_bool(o: Ordering, op: CmpOp) -> bool {
    match op {
        CmpOp::Eq => o == Ordering::Equal,
        CmpOp::Ne => o != Ordering::Equal,
        CmpOp::Lt => o == Ordering::Less,
        CmpOp::Le => o != Ordering::Greater,
        CmpOp::Gt => o == Ordering::Greater,
        CmpOp::Ge => o != Ordering::Less,
    }
}

fn cmp_kernel(a: &Column, op: CmpOp, b: &Column) -> Column {
    let n = a.len();
    let mut out = BoolBuilder::with_capacity(n);
    let both = |i: usize| a.validity.get(i) && b.validity.get(i);
    match (&a.data, &b.data) {
        (ColumnData::I64(x), ColumnData::I64(y)) => {
            for i in 0..n {
                out.push(both(i).then(|| ord_to_bool(x[i].cmp(&y[i]), op)));
            }
        }
        (ColumnData::F64(x), ColumnData::F64(y)) => {
            for i in 0..n {
                let o = if both(i) { x[i].partial_cmp(&y[i]) } else { None };
                out.push(o.map(|o| ord_to_bool(o, op)));
            }
        }
        (ColumnData::I64(x), ColumnData::F64(y)) => {
            for i in 0..n {
                let o = if both(i) { (x[i] as f64).partial_cmp(&y[i]) } else { None };
                out.push(o.map(|o| ord_to_bool(o, op)));
            }
        }
        (ColumnData::F64(x), ColumnData::I64(y)) => {
            for i in 0..n {
                let o = if both(i) { x[i].partial_cmp(&(y[i] as f64)) } else { None };
                out.push(o.map(|o| ord_to_bool(o, op)));
            }
        }
        (ColumnData::Str(x), ColumnData::Str(y)) => {
            for i in 0..n {
                out.push(both(i).then(|| ord_to_bool(x.get(i).cmp(y.get(i)), op)));
            }
        }
        (ColumnData::Bool(x), ColumnData::Bool(y)) => {
            for i in 0..n {
                out.push(both(i).then(|| ord_to_bool(x.get(i).cmp(&y.get(i)), op)));
            }
        }
        // Boxed or cross-representation operands: defer to the row
        // primitive slot by slot (identical semantics by construction).
        _ => {
            for i in 0..n {
                out.push_value(expr::eval_cmp(&a.get(i), op, &b.get(i)));
            }
        }
    }
    out.finish()
}

fn num_kernel(a: &Column, op: NumOp, b: &Column) -> Column {
    let n = a.len();
    let both = |i: usize| a.validity.get(i) && b.validity.get(i);
    match (&a.data, &b.data) {
        // Integer arithmetic stays integer (checked — overflow and x % 0
        // become NULL), except division, which always yields a double.
        (ColumnData::I64(x), ColumnData::I64(y)) if op != NumOp::Div => {
            let mut validity = Bitmap::with_capacity(n);
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let r = if both(i) {
                    match op {
                        NumOp::Add => x[i].checked_add(y[i]),
                        NumOp::Sub => x[i].checked_sub(y[i]),
                        NumOp::Mul => x[i].checked_mul(y[i]),
                        NumOp::Mod => {
                            if y[i] == 0 {
                                None
                            } else {
                                x[i].checked_rem(y[i])
                            }
                        }
                        NumOp::Div => unreachable!(),
                    }
                } else {
                    None
                };
                validity.push(r.is_some());
                out.push(r.unwrap_or(0));
            }
            Column { validity, data: ColumnData::I64(out) }
        }
        (ColumnData::I64(_) | ColumnData::F64(_), ColumnData::I64(_) | ColumnData::F64(_)) => {
            let as_f64 = |data: &ColumnData, i: usize| match data {
                ColumnData::I64(v) => v[i] as f64,
                ColumnData::F64(v) => v[i],
                _ => unreachable!(),
            };
            let mut validity = Bitmap::with_capacity(n);
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                if both(i) {
                    let (x, y) = (as_f64(&a.data, i), as_f64(&b.data, i));
                    validity.push(true);
                    out.push(match op {
                        NumOp::Add => x + y,
                        NumOp::Sub => x - y,
                        NumOp::Mul => x * y,
                        NumOp::Div => x / y,
                        NumOp::Mod => x % y,
                    });
                } else {
                    validity.push(false);
                    out.push(0.0);
                }
            }
            Column { validity, data: ColumnData::F64(out) }
        }
        // Non-numeric or mixed-representation operands: slot-by-slot via
        // the row primitive; results may mix I64/F64/NULL, so rebuild.
        _ => {
            let results = (0..n).map(|i| expr::eval_num(&a.get(i), op, &b.get(i))).collect();
            Column::from_values(results)
        }
    }
}

/// Evaluates a bound expression over a whole batch, producing one column.
/// Typed columns take vectorized fast paths; UDFs and mixed-type columns
/// fall back to per-slot evaluation with identical semantics. A bare column
/// reference shares the input column instead of copying it.
pub fn eval(e: &BoundExpr, batch: &ColumnBatch) -> Arc<Column> {
    let n = batch.len();
    match e {
        BoundExpr::Col(i) => Arc::clone(&batch.columns[*i]),
        BoundExpr::Lit(v) => Arc::new(Column::broadcast(v, n)),
        BoundExpr::Cmp(a, op, b) => Arc::new(cmp_kernel(&eval(a, batch), *op, &eval(b, batch))),
        BoundExpr::Num(a, op, b) => Arc::new(num_kernel(&eval(a, batch), *op, &eval(b, batch))),
        BoundExpr::And(a, b) => {
            let (ca, cb) = (eval(a, batch), eval(b, batch));
            let mut out = BoolBuilder::with_capacity(n);
            for i in 0..n {
                out.push(match (truth_at(&ca, i), truth_at(&cb, i)) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                });
            }
            Arc::new(out.finish())
        }
        BoundExpr::Or(a, b) => {
            let (ca, cb) = (eval(a, batch), eval(b, batch));
            let mut out = BoolBuilder::with_capacity(n);
            for i in 0..n {
                out.push(match (truth_at(&ca, i), truth_at(&cb, i)) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                });
            }
            Arc::new(out.finish())
        }
        BoundExpr::Not(a) => {
            let ca = eval(a, batch);
            let mut out = BoolBuilder::with_capacity(n);
            for i in 0..n {
                out.push(truth_at(&ca, i).map(|b| !b));
            }
            Arc::new(out.finish())
        }
        BoundExpr::IsNull(a) => {
            let ca = eval(a, batch);
            let mut out = BoolBuilder::with_capacity(n);
            for i in 0..n {
                out.push(Some(!ca.validity.get(i)));
            }
            Arc::new(out.finish())
        }
        // Opaque row functions force the scalar path: materialize each row.
        BoundExpr::Udf { f, schema } => {
            let results = (0..n).map(|i| f(schema, &batch.row(i))).collect();
            Arc::new(Column::from_values(results))
        }
    }
}

// ---------------------------------------------------------------------------
// Operator kernels
// ---------------------------------------------------------------------------

/// Evaluates a filter predicate over the batch and returns the selection
/// vector of surviving row indices (only a definite `TRUE` keeps a row).
pub fn selection(pred: &BoundExpr, batch: &ColumnBatch) -> Vec<u32> {
    refine(pred, batch, None)
}

/// Refines a selection vector through a filter predicate *without*
/// materializing the batch: the predicate is evaluated over every slot
/// once, then only already-selected slots whose truth value is a definite
/// `TRUE` survive. `None` means "all slots selected". The order (ascending)
/// of the selection is preserved, so consecutive filters compose into one
/// final gather. Callers must not pass UDF predicates here with a narrowed
/// selection — built-in operators are pure and total on every value, but a
/// UDF may only observe rows that logically reach it.
pub fn refine(pred: &BoundExpr, batch: &ColumnBatch, sel: Option<Vec<u32>>) -> Vec<u32> {
    let c = eval(pred, batch);
    match sel {
        Some(s) => s.into_iter().filter(|&i| truth_at(&c, i as usize) == Some(true)).collect(),
        None => {
            (0..batch.len).filter(|&i| truth_at(&c, i) == Some(true)).map(|i| i as u32).collect()
        }
    }
}

/// Projects the batch through `exprs` (one output column per expression).
pub fn project(exprs: &[BoundExpr], batch: &ColumnBatch) -> ColumnBatch {
    ColumnBatch { len: batch.len, columns: exprs.iter().map(|e| eval(e, batch)).collect() }
}

/// EXPLODE over column `col`: one output row per list element, the list
/// column replaced by the element. NULLs and non-lists yield no rows. The
/// other columns replicate through a selection vector with repetition.
pub fn explode(batch: &ColumnBatch, col: usize) -> ColumnBatch {
    let mut parents: Vec<u32> = Vec::new();
    let mut elems: Vec<Value> = Vec::new();
    let c = &batch.columns[col];
    for i in 0..batch.len {
        if let Value::List(items) = c.get(i) {
            for v in items.iter() {
                parents.push(i as u32);
                elems.push(v.clone());
            }
        }
    }
    let mut out = batch.gather(&parents);
    out.columns[col] = Arc::new(Column::from_values(elems));
    out
}

/// Materializes §4.7 grouping keys for every row of the batch: one
/// [`KeyValue`] vector per row, hashable/equatable by exact representation.
pub fn group_keys(batch: &ColumnBatch, key_cols: &[usize]) -> Vec<Vec<KeyValue>> {
    (0..batch.len)
        .map(|i| key_cols.iter().map(|&c| KeyValue(batch.columns[c].get(i))).collect())
        .collect()
}

/// Materializes sort keys for every row of the batch: one [`SortKey`]
/// vector per row, ordered so a plain ascending sort realizes the requested
/// multi-key order. The reference the normalized-key encoding
/// ([`sort_key_bytes`]) is proven equivalent to.
pub fn sort_keys(batch: &ColumnBatch, spec: &[(usize, SortDir)]) -> Vec<Vec<SortKey>> {
    (0..batch.len)
        .map(|i| spec.iter().map(|&(c, d)| SortKey::new(batch.columns[c].get(i), d)).collect())
        .collect()
}

// ---------------------------------------------------------------------------
// §4.7 normalized key encodings
// ---------------------------------------------------------------------------
//
// Two distinct byte encodings, because grouping and sorting need different
// equivalences: the *sort* encoding is order-equivalent to `SortKey` (so
// `I64(1)` and `F64(1.0)` encode as numeric ties, disambiguated only by a
// type-rank byte), while the *group* encoding is equality-faithful to
// `KeyValue` (`I64(1)`, `F64(1.0)` and `Str("1")` are three distinct keys,
// floats identified by bit pattern). Both are built column-at-a-time so the
// shuffle boundary never materializes per-row `Vec<SortKey>`/`Vec<KeyValue>`
// scratch values.

/// Iterates `(dense position, batch row index)` pairs of a selection
/// (`None` selects every row) — the driving loop shared by the
/// column-at-a-time key encoders and accumulators.
fn for_each_row(len: usize, sel: Option<&[u32]>, mut f: impl FnMut(usize, usize)) {
    match sel {
        Some(s) => {
            for (p, &i) in s.iter().enumerate() {
                f(p, i as usize);
            }
        }
        None => {
            for i in 0..len {
                f(i, i);
            }
        }
    }
}

// Sort-encoding alphabet. A NULL cell is a single placement byte (below or
// above every non-null first byte in both directions); non-null cells start
// with a type tag matching the `value_cmp` bucket order. `SORT_TAG_NULL`
// appears only *inside* lists, where NULL elements compare like any value.
const SORT_NULL_FIRST: u8 = 0x00;
const SORT_NULL_LAST: u8 = 0xFF;
const SORT_TAG_NULL: u8 = 0x01;
const SORT_TAG_BOOL: u8 = 0x02;
const SORT_TAG_NUM: u8 = 0x03;
const SORT_TAG_STR: u8 = 0x04;
const SORT_TAG_BIN: u8 = 0x05;
const SORT_TAG_LIST: u8 = 0x06;
/// Terminates a list body; orders below every element tag, realizing
/// "elementwise, then by length".
const SORT_LIST_END: u8 = 0x00;
/// Numeric type ranks after the shared 8-byte magnitude key: an `I64` that
/// widens to the same double as an `F64` orders first (the `value_cmp`
/// totalization tiebreak).
const SORT_NUM_I64: u8 = 0x00;
const SORT_NUM_F64: u8 = 0x01;

/// Maps an `f64` to a `u64` whose unsigned order equals `f64::total_cmp`:
/// flip the sign bit of positives, complement negatives.
fn ordered_f64(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b ^ (1u64 << 63)
    }
}

/// Maps an `i64` to a `u64` whose unsigned order equals the signed order.
fn ordered_i64(x: i64) -> u64 {
    (x as u64) ^ (1u64 << 63)
}

/// Appends a variable-length byte string, order-preserving and prefix-free:
/// `0x00` escapes to `(0x00, 0xFF)`, and `(0x00, 0x00)` terminates.
fn push_terminated(out: &mut Vec<u8>, bytes: &[u8]) {
    for &b in bytes {
        if b == 0x00 {
            out.extend_from_slice(&[0x00, 0xFF]);
        } else {
            out.push(b);
        }
    }
    out.extend_from_slice(&[0x00, 0x00]);
}

fn sort_canonical_i64(out: &mut Vec<u8>, x: i64) {
    out.push(SORT_TAG_NUM);
    out.extend_from_slice(&ordered_f64(x as f64).to_be_bytes());
    out.push(SORT_NUM_I64);
    // The widening above loses precision past 2^53; the exact payload
    // breaks those ties so the encoding stays a total order on integers.
    out.extend_from_slice(&ordered_i64(x).to_be_bytes());
}

fn sort_canonical_f64(out: &mut Vec<u8>, x: f64) {
    out.push(SORT_TAG_NUM);
    out.extend_from_slice(&ordered_f64(x).to_be_bytes());
    out.push(SORT_NUM_F64);
}

fn sort_canonical_str(out: &mut Vec<u8>, s: &str) {
    out.push(SORT_TAG_STR);
    push_terminated(out, s.as_bytes());
}

/// The ascending canonical encoding of a non-null value: memcmp order over
/// these byte strings equals `value_cmp`, byte equality equals
/// `value_cmp == Equal`, and every encoding is prefix-free (so cells
/// concatenate into multi-key rows, and bytewise complement reverses the
/// order exactly).
fn sort_canonical(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(SORT_TAG_NULL),
        Value::Bool(b) => {
            out.push(SORT_TAG_BOOL);
            out.push(*b as u8);
        }
        Value::I64(x) => sort_canonical_i64(out, *x),
        Value::F64(x) => sort_canonical_f64(out, *x),
        Value::Str(s) => sort_canonical_str(out, s),
        Value::Bin(b) => {
            out.push(SORT_TAG_BIN);
            push_terminated(out, b);
        }
        Value::List(l) => {
            out.push(SORT_TAG_LIST);
            for e in l.iter() {
                sort_canonical(out, e);
            }
            out.push(SORT_LIST_END);
        }
    }
}

fn complement(bytes: &mut [u8]) {
    for b in bytes {
        *b = !*b;
    }
}

/// Appends the normalized sort encoding of one cell: bytewise comparison of
/// the result equals [`SortKey`] comparison. NULL placement is applied
/// before direction (a single un-complemented placement byte), descending
/// cells complement the canonical encoding.
pub fn encode_sort_cell(out: &mut Vec<u8>, v: &Value, dir: SortDir) {
    if v.is_null() {
        out.push(if dir.nulls_last { SORT_NULL_LAST } else { SORT_NULL_FIRST });
        return;
    }
    let start = out.len();
    sort_canonical(out, v);
    if !dir.ascending {
        complement(&mut out[start..]);
    }
}

/// Encodes one row's sort key as a single flat byte string — the per-row
/// closure of the normalized-key ORDER BY, sharing the cell encoders with
/// the [`sort_key_bytes`] batch kernel.
pub fn encode_row_sort_key(row: &[Value], spec: &[(usize, SortDir)]) -> Vec<u8> {
    // 19 bytes covers the widest fixed-size cell (I64: tag + magnitude +
    // rank + exact payload), so typical keys encode without a mid-key
    // realloc; only string/binary/list cells can overflow the guess.
    let mut out = Vec::with_capacity(spec.len() * 19);
    for &(i, d) in spec {
        encode_sort_cell(&mut out, &row[i], d);
    }
    out
}

/// Materializes normalized sort keys for every row of the batch,
/// column-at-a-time with typed fast paths: bytewise order over the results
/// equals lexicographic [`SortKey`] order (see [`sort_keys`]).
pub fn sort_key_bytes(batch: &ColumnBatch, spec: &[(usize, SortDir)]) -> Vec<Vec<u8>> {
    let mut keys: Vec<Vec<u8>> = vec![Vec::with_capacity(spec.len() * 19); batch.len];
    for &(c, dir) in spec {
        encode_sort_column(&batch.columns[c], batch.len, None, dir, &mut keys);
    }
    keys
}

/// Appends column `col`'s sort cells to the per-row key buffers.
fn encode_sort_column(
    col: &Column,
    len: usize,
    sel: Option<&[u32]>,
    dir: SortDir,
    bufs: &mut [Vec<u8>],
) {
    let null_byte = if dir.nulls_last { SORT_NULL_LAST } else { SORT_NULL_FIRST };
    let desc = !dir.ascending;
    match &col.data {
        ColumnData::I64(xs) => for_each_row(len, sel, |p, i| {
            let out = &mut bufs[p];
            if !col.validity.get(i) {
                return out.push(null_byte);
            }
            let start = out.len();
            sort_canonical_i64(out, xs[i]);
            if desc {
                complement(&mut out[start..]);
            }
        }),
        ColumnData::F64(xs) => for_each_row(len, sel, |p, i| {
            let out = &mut bufs[p];
            if !col.validity.get(i) {
                return out.push(null_byte);
            }
            let start = out.len();
            sort_canonical_f64(out, xs[i]);
            if desc {
                complement(&mut out[start..]);
            }
        }),
        ColumnData::Bool(bits) => for_each_row(len, sel, |p, i| {
            let out = &mut bufs[p];
            if !col.validity.get(i) {
                return out.push(null_byte);
            }
            let (tag, payload) = (SORT_TAG_BOOL, bits.get(i) as u8);
            if desc {
                out.extend_from_slice(&[!tag, !payload]);
            } else {
                out.extend_from_slice(&[tag, payload]);
            }
        }),
        ColumnData::Str(arena) => for_each_row(len, sel, |p, i| {
            let out = &mut bufs[p];
            if !col.validity.get(i) {
                return out.push(null_byte);
            }
            let start = out.len();
            sort_canonical_str(out, arena.get(i));
            if desc {
                complement(&mut out[start..]);
            }
        }),
        ColumnData::Boxed(vs) => for_each_row(len, sel, |p, i| {
            let out = &mut bufs[p];
            if !col.validity.get(i) {
                return out.push(null_byte);
            }
            encode_sort_cell(out, &vs[i], dir);
        }),
    }
}

// Group-identity alphabet: tag + exact payload, mirroring `KeyValue`'s
// `Hash`/`Eq` (floats by bit pattern, no cross-type identification).
const GK_NULL: u8 = 0;
const GK_BOOL: u8 = 1;
const GK_I64: u8 = 2;
const GK_F64: u8 = 3;
const GK_STR: u8 = 4;
const GK_BIN: u8 = 5;
const GK_LIST: u8 = 6;

/// Appends the group-identity encoding of one value: two values encode to
/// the same bytes **iff** they are equal as [`KeyValue`]s. Strings,
/// binaries and lists are length-prefixed (u32 LE), so the encoding is
/// self-delimiting and round-trips through [`decode_group_value`].
pub fn encode_group_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(GK_NULL),
        Value::Bool(b) => {
            out.push(GK_BOOL);
            out.push(*b as u8);
        }
        Value::I64(x) => {
            out.push(GK_I64);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(GK_F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(GK_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bin(b) => {
            out.push(GK_BIN);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        Value::List(l) => {
            out.push(GK_LIST);
            out.extend_from_slice(&(l.len() as u32).to_le_bytes());
            for e in l.iter() {
                encode_group_value(out, e);
            }
        }
    }
}

fn split8(b: &[u8]) -> Option<([u8; 8], &[u8])> {
    if b.len() < 8 {
        return None;
    }
    let (a, rest) = b.split_at(8);
    Some((a.try_into().expect("8 bytes"), rest))
}

fn split_len(b: &[u8]) -> Option<(usize, &[u8])> {
    if b.len() < 4 {
        return None;
    }
    let (a, rest) = b.split_at(4);
    Some((u32::from_le_bytes(a.try_into().expect("4 bytes")) as usize, rest))
}

/// Decodes one group-identity value off the front of `bytes`, returning the
/// value and the remaining suffix (`None` on malformed input). The inverse
/// of [`encode_group_value`], bit-exact for floats.
pub fn decode_group_value(bytes: &[u8]) -> Option<(Value, &[u8])> {
    let (&tag, rest) = bytes.split_first()?;
    Some(match tag {
        GK_NULL => (Value::Null, rest),
        GK_BOOL => {
            let (&b, rest) = rest.split_first()?;
            (Value::Bool(b != 0), rest)
        }
        GK_I64 => {
            let (a, rest) = split8(rest)?;
            (Value::I64(i64::from_le_bytes(a)), rest)
        }
        GK_F64 => {
            let (a, rest) = split8(rest)?;
            (Value::F64(f64::from_bits(u64::from_le_bytes(a))), rest)
        }
        GK_STR => {
            let (len, rest) = split_len(rest)?;
            if rest.len() < len {
                return None;
            }
            let (s, rest) = rest.split_at(len);
            (Value::str(std::str::from_utf8(s).ok()?), rest)
        }
        GK_BIN => {
            let (len, rest) = split_len(rest)?;
            if rest.len() < len {
                return None;
            }
            let (b, rest) = rest.split_at(len);
            (Value::Bin(Arc::from(b)), rest)
        }
        GK_LIST => {
            let (len, mut rest) = split_len(rest)?;
            let mut items = Vec::with_capacity(len.min(64));
            for _ in 0..len {
                let (v, r) = decode_group_value(rest)?;
                items.push(v);
                rest = r;
            }
            (Value::list(items), rest)
        }
        _ => return None,
    })
}

/// Appends column `col`'s group-identity cells to the per-row key buffers,
/// typed column-at-a-time (no `Value` materialization on scalar columns).
fn encode_group_column(col: &Column, len: usize, sel: Option<&[u32]>, bufs: &mut [Vec<u8>]) {
    match &col.data {
        ColumnData::I64(xs) => for_each_row(len, sel, |p, i| {
            let out = &mut bufs[p];
            if col.validity.get(i) {
                out.push(GK_I64);
                out.extend_from_slice(&xs[i].to_le_bytes());
            } else {
                out.push(GK_NULL);
            }
        }),
        ColumnData::F64(xs) => for_each_row(len, sel, |p, i| {
            let out = &mut bufs[p];
            if col.validity.get(i) {
                out.push(GK_F64);
                out.extend_from_slice(&xs[i].to_bits().to_le_bytes());
            } else {
                out.push(GK_NULL);
            }
        }),
        ColumnData::Bool(bits) => for_each_row(len, sel, |p, i| {
            let out = &mut bufs[p];
            if col.validity.get(i) {
                out.extend_from_slice(&[GK_BOOL, bits.get(i) as u8]);
            } else {
                out.push(GK_NULL);
            }
        }),
        ColumnData::Str(arena) => for_each_row(len, sel, |p, i| {
            let out = &mut bufs[p];
            if col.validity.get(i) {
                let s = arena.get(i);
                out.push(GK_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            } else {
                out.push(GK_NULL);
            }
        }),
        ColumnData::Boxed(vs) => for_each_row(len, sel, |p, i| {
            let out = &mut bufs[p];
            if col.validity.get(i) {
                encode_group_value(out, &vs[i]);
            } else {
                out.push(GK_NULL);
            }
        }),
    }
}

// ---------------------------------------------------------------------------
// Vectorized group-by kernel
// ---------------------------------------------------------------------------

/// Partial SUM state, replicating the row path's `AggState::Sum` fold
/// (`create` then left-to-right `merge` via `add_values`) with typed
/// storage. `Poison` is the absorbing `Some(Null)` state that integer
/// overflow or a non-numeric addend produces; it is distinct from `Empty`
/// (`None`, no non-null value seen), which the wire codec keeps separate.
#[derive(Clone)]
enum SumState {
    Empty,
    I64(i64),
    F64(f64),
    Poison,
    /// A single non-numeric first value (`SUM` of one string row returns
    /// that string, like the row path); any further addend poisons it.
    Other(Value),
}

fn sum_push_i64(s: &mut SumState, x: i64) {
    match s {
        SumState::Empty => *s = SumState::I64(x),
        SumState::I64(a) => match a.checked_add(x) {
            Some(r) => *a = r,
            None => *s = SumState::Poison,
        },
        SumState::F64(a) => *a += x as f64,
        SumState::Poison => {}
        SumState::Other(_) => *s = SumState::Poison,
    }
}

fn sum_push_f64(s: &mut SumState, x: f64) {
    match s {
        SumState::Empty => *s = SumState::F64(x),
        SumState::I64(a) => *s = SumState::F64(*a as f64 + x),
        SumState::F64(a) => *a += x,
        SumState::Poison => {}
        SumState::Other(_) => *s = SumState::Poison,
    }
}

/// Generic (boxed-column) SUM transition for a non-null value.
fn sum_push(s: &mut SumState, v: Value) {
    match v {
        Value::I64(x) => sum_push_i64(s, x),
        Value::F64(x) => sum_push_f64(s, x),
        v => match s {
            SumState::Empty => *s = SumState::Other(v),
            _ => *s = SumState::Poison,
        },
    }
}

impl SumState {
    fn finish(self) -> AggState {
        AggState::Sum(match self {
            SumState::Empty => None,
            SumState::I64(x) => Some(Value::I64(x)),
            SumState::F64(x) => Some(Value::F64(x)),
            SumState::Poison => Some(Value::Null),
            SumState::Other(v) => Some(v),
        })
    }
}

/// MIN/MAX transition: keep the accumulated value on ties (the row path's
/// `merge` keeps its left operand when `value_cmp` says equal).
fn minmax_push(slot: &mut Option<Value>, v: Value, want_max: bool) {
    match slot {
        None => *slot = Some(v),
        Some(acc) => {
            let o = value_cmp(acc, &v);
            let keep = if want_max { o.is_ge() } else { o.is_le() };
            if !keep {
                *slot = Some(v);
            }
        }
    }
}

/// One aggregate's per-group state column: typed vectors indexed by group
/// id, each update a column-at-a-time pass over the batch. Every transition
/// replicates `AggState::create` + left-fold `AggState::merge` over the
/// partition's rows in row order, so the emitted states are byte-identical
/// (under `GroupPairCodec`) to the row path's map-side combine output.
enum Accumulator {
    Count(Vec<i64>),
    CountCol {
        col: usize,
        counts: Vec<i64>,
    },
    Sum {
        col: usize,
        states: Vec<SumState>,
    },
    /// `seen` marks groups whose first row has landed: the row fold *sets*
    /// the first row's contribution (keeping `-0.0` / NaN payload bits) and
    /// *adds* every later one — including `+ 0.0` for NULL or non-numeric
    /// rows, which flips `-0.0` sums to `+0.0`. Both behaviours must be
    /// replicated bit-for-bit.
    Avg {
        col: usize,
        sums: Vec<f64>,
        ns: Vec<i64>,
        seen: Vec<bool>,
    },
    MinMax {
        col: usize,
        want_max: bool,
        states: Vec<Option<Value>>,
    },
    First {
        col: usize,
        states: Vec<Option<Value>>,
    },
    List {
        col: usize,
        lists: Vec<Vec<Value>>,
    },
}

impl Accumulator {
    fn new(agg: &Agg, col: Option<usize>) -> Accumulator {
        let col = || col.expect("column aggregate resolved at compile time");
        match agg {
            Agg::Count => Accumulator::Count(Vec::new()),
            Agg::CountCol(_) => Accumulator::CountCol { col: col(), counts: Vec::new() },
            Agg::Sum(_) => Accumulator::Sum { col: col(), states: Vec::new() },
            Agg::Avg(_) => {
                Accumulator::Avg { col: col(), sums: Vec::new(), ns: Vec::new(), seen: Vec::new() }
            }
            Agg::Min(_) => Accumulator::MinMax { col: col(), want_max: false, states: Vec::new() },
            Agg::Max(_) => Accumulator::MinMax { col: col(), want_max: true, states: Vec::new() },
            Agg::First(_) => Accumulator::First { col: col(), states: Vec::new() },
            Agg::CollectList(_) => Accumulator::List { col: col(), lists: Vec::new() },
        }
    }

    /// Appends the initial state of a freshly inserted group.
    fn push_group(&mut self) {
        match self {
            Accumulator::Count(v) => v.push(0),
            Accumulator::CountCol { counts, .. } => counts.push(0),
            Accumulator::Sum { states, .. } => states.push(SumState::Empty),
            Accumulator::Avg { sums, ns, seen, .. } => {
                sums.push(0.0);
                ns.push(0);
                seen.push(false);
            }
            Accumulator::MinMax { states, .. } | Accumulator::First { states, .. } => {
                states.push(None)
            }
            Accumulator::List { lists, .. } => lists.push(Vec::new()),
        }
    }

    /// Folds the batch's (selected) rows into the group states, `gids[p]`
    /// naming row `p`'s group.
    fn update(&mut self, gids: &[u32], batch: &ColumnBatch, sel: Option<&[u32]>) {
        let len = batch.len;
        match self {
            Accumulator::Count(v) => {
                for &g in gids {
                    v[g as usize] += 1;
                }
            }
            Accumulator::CountCol { col, counts } => {
                let c = &batch.columns[*col];
                for_each_row(len, sel, |p, i| {
                    if c.validity.get(i) {
                        counts[gids[p] as usize] += 1;
                    }
                });
            }
            Accumulator::Sum { col, states } => {
                let c = &batch.columns[*col];
                match &c.data {
                    ColumnData::I64(xs) => for_each_row(len, sel, |p, i| {
                        if c.validity.get(i) {
                            sum_push_i64(&mut states[gids[p] as usize], xs[i]);
                        }
                    }),
                    ColumnData::F64(xs) => for_each_row(len, sel, |p, i| {
                        if c.validity.get(i) {
                            sum_push_f64(&mut states[gids[p] as usize], xs[i]);
                        }
                    }),
                    _ => for_each_row(len, sel, |p, i| {
                        if c.validity.get(i) {
                            sum_push(&mut states[gids[p] as usize], c.get(i));
                        }
                    }),
                }
            }
            Accumulator::Avg { col, sums, ns, seen } => {
                let c = &batch.columns[*col];
                let mut push = |g: usize, x: Option<f64>| {
                    let contrib = match x {
                        Some(x) => {
                            ns[g] += 1;
                            x
                        }
                        None => 0.0,
                    };
                    if seen[g] {
                        sums[g] += contrib;
                    } else {
                        sums[g] = contrib;
                        seen[g] = true;
                    }
                };
                match &c.data {
                    ColumnData::I64(xs) => for_each_row(len, sel, |p, i| {
                        let g = gids[p] as usize;
                        push(g, c.validity.get(i).then(|| xs[i] as f64));
                    }),
                    ColumnData::F64(xs) => for_each_row(len, sel, |p, i| {
                        let g = gids[p] as usize;
                        push(g, c.validity.get(i).then(|| xs[i]));
                    }),
                    _ => for_each_row(len, sel, |p, i| {
                        let g = gids[p] as usize;
                        push(g, if c.validity.get(i) { c.get(i).as_f64() } else { None });
                    }),
                }
            }
            Accumulator::MinMax { col, want_max, states } => {
                let c = &batch.columns[*col];
                let want_max = *want_max;
                match &c.data {
                    ColumnData::Str(arena) => for_each_row(len, sel, |p, i| {
                        if !c.validity.get(i) {
                            return;
                        }
                        let s = arena.get(i);
                        let slot = &mut states[gids[p] as usize];
                        // Compare without allocating; only a new extreme
                        // materializes an `Arc<str>`.
                        if let Some(Value::Str(acc)) = slot {
                            let replace =
                                if want_max { s > acc.as_ref() } else { s < acc.as_ref() };
                            if replace {
                                *slot = Some(Value::str(s));
                            }
                        } else {
                            minmax_push(slot, Value::str(s), want_max);
                        }
                    }),
                    _ => for_each_row(len, sel, |p, i| {
                        if c.validity.get(i) {
                            minmax_push(&mut states[gids[p] as usize], c.get(i), want_max);
                        }
                    }),
                }
            }
            Accumulator::First { col, states } => {
                let c = &batch.columns[*col];
                for_each_row(len, sel, |p, i| {
                    let slot = &mut states[gids[p] as usize];
                    if slot.is_none() && c.validity.get(i) {
                        *slot = Some(c.get(i));
                    }
                });
            }
            Accumulator::List { col, lists } => {
                let c = &batch.columns[*col];
                for_each_row(len, sel, |p, i| {
                    if c.validity.get(i) {
                        lists[gids[p] as usize].push(c.get(i));
                    }
                });
            }
        }
    }

    fn finish(self) -> Vec<AggState> {
        match self {
            Accumulator::Count(v) | Accumulator::CountCol { counts: v, .. } => {
                v.into_iter().map(AggState::Count).collect()
            }
            Accumulator::Sum { states, .. } => states.into_iter().map(SumState::finish).collect(),
            Accumulator::Avg { sums, ns, .. } => {
                sums.into_iter().zip(ns).map(|(sum, n)| AggState::Avg { sum, n }).collect()
            }
            Accumulator::MinMax { want_max, states, .. } => states
                .into_iter()
                .map(|v| if want_max { AggState::Max(v) } else { AggState::Min(v) })
                .collect(),
            Accumulator::First { states, .. } => states.into_iter().map(AggState::First).collect(),
            Accumulator::List { lists, .. } => lists.into_iter().map(AggState::List).collect(),
        }
    }
}

/// SplitMix64's output mixer: bijective, avalanches all 64 bits. FxHash is
/// multiplicative-only, so its low bits — exactly the ones the open-addressed
/// table masks off — barely mix; on sequential integer keys the raw hashes
/// form a lattice that linear probing amplifies into huge primary clusters
/// (probe chains thousands of slots long). One extra mix makes the masked
/// bits uniform and keeps inserts O(1).
#[inline]
fn splitmix_finish(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^= h >> 31;
    h
}

/// Reduce-side merge for the vectorized aggregation path: folds the
/// shuffle's concatenated `(key, states)` bucket into first-occurrence key
/// order, merging duplicates in stream order — exactly what
/// [`ShuffledRdd`](crate::rdd) does reduce-side when built with a merge
/// function, so output is byte-identical. The difference is mechanical: an
/// open-addressed table probed with a mixed 64-bit hash instead of a
/// `HashMap<Vec<KeyValue>, _>` whose unmixed multiplicative hashes cluster
/// badly on sequential keys — and the bucket is read *borrowed*, so only
/// each group's first occurrence is cloned ([`AggState::merge_ref`] folds
/// the duplicates in place) rather than every incoming pair.
pub(crate) fn merge_group_pairs(
    pairs: &[(Vec<KeyValue>, Vec<AggState>)],
) -> Vec<(Vec<KeyValue>, Vec<AggState>)> {
    let hint = pairs.len();
    let mut cap = 16usize;
    while cap * 7 < hint.saturating_mul(8) {
        cap *= 2;
    }
    let mut slots: Vec<u32> = vec![0; cap];
    let mut mask = (cap - 1) as u64;
    let mut hashes: Vec<u64> = Vec::with_capacity(hint);
    let mut out: Vec<(Vec<KeyValue>, Vec<AggState>)> = Vec::with_capacity(hint);
    for (k, states) in pairs {
        let h = splitmix_finish(fx_hash(k));
        let mut idx = (h & mask) as usize;
        loop {
            let slot = slots[idx];
            if slot == 0 {
                slots[idx] = out.len() as u32 + 1;
                hashes.push(h);
                out.push((k.clone(), states.clone()));
                break;
            }
            let g = (slot - 1) as usize;
            if hashes[g] == h && out[g].0 == *k {
                for (a, b) in out[g].1.iter_mut().zip(states) {
                    a.merge_ref(b);
                }
                break;
            }
            idx = (idx + 1) & mask as usize;
        }
        // Same 7/8 growth discipline as [`GroupByKernel`].
        if (out.len() + 1) * 8 > slots.len() * 7 {
            let grown = slots.len() * 2;
            slots.clear();
            slots.resize(grown, 0);
            mask = (grown - 1) as u64;
            for (g, &h) in hashes.iter().enumerate() {
                let mut idx = (h & mask) as usize;
                while slots[idx] != 0 {
                    idx = (idx + 1) & mask as usize;
                }
                slots[idx] = g as u32 + 1;
            }
        }
    }
    out
}

/// The per-partition vectorized hash group-by: batches stream in (with an
/// optional selection vector, so a fused filter needs no gather), groups
/// accumulate in typed state columns, and one `(key, states)` pair per
/// **distinct group** streams out — in first-occurrence row order, which is
/// exactly the order the row path's insertion-ordered map-side combine
/// produces, keeping all physical paths byte-identical.
///
/// Group identity is an open-addressed table over the encoded key bytes
/// (arena-backed, linear probing, power-of-two capacity): one probe per
/// row against a flat `Vec<u32>` slot array replaces the row path's
/// per-row `Vec<KeyValue>` allocation + `HashMap` rehash.
pub(crate) struct GroupByKernel {
    key_cols: Vec<usize>,
    /// `group id + 1` per slot; 0 = empty.
    slots: Vec<u32>,
    mask: u64,
    /// Per-group probe hashes (for rehashing and fast inequality).
    hashes: Vec<u64>,
    /// Encoded key bytes, arena-packed: group `g` owns
    /// `key_arena[key_offsets[g]..key_offsets[g + 1]]`.
    key_offsets: Vec<usize>,
    key_arena: Vec<u8>,
    /// Materialized keys in first-occurrence order (the emission order and
    /// the shuffle partitioning input).
    keys: Vec<Vec<KeyValue>>,
    accs: Vec<Accumulator>,
    rows_in: u64,
    /// Per-row scratch, reused across batches (capacity retained).
    bufs: Vec<Vec<u8>>,
    gids: Vec<u32>,
}

impl GroupByKernel {
    pub(crate) fn new(key_cols: Vec<usize>, specs: &[(Agg, Option<usize>)]) -> GroupByKernel {
        GroupByKernel {
            key_cols,
            slots: vec![0; 16],
            mask: 15,
            hashes: Vec::new(),
            key_offsets: vec![0],
            key_arena: Vec::new(),
            keys: Vec::new(),
            accs: specs.iter().map(|(a, c)| Accumulator::new(a, *c)).collect(),
            rows_in: 0,
            bufs: Vec::new(),
            gids: Vec::new(),
        }
    }

    /// Grows the slot array (rebuilding from the stored hashes) until
    /// `additional` more groups would keep occupancy under 7/8. Called once
    /// per batch with the batch's row count — the worst case of every row
    /// starting a group — so the probe loop carries no growth check and the
    /// table always probes below the threshold load.
    fn reserve(&mut self, additional: usize) {
        let needed = self.hashes.len() + additional;
        let mut cap = self.slots.len();
        while (needed + 1) * 8 > cap * 7 {
            cap *= 2;
        }
        if cap == self.slots.len() {
            return;
        }
        self.slots.clear();
        self.slots.resize(cap, 0);
        self.mask = (cap - 1) as u64;
        for (g, &h) in self.hashes.iter().enumerate() {
            let mut idx = (h & self.mask) as usize;
            while self.slots[idx] != 0 {
                idx = (idx + 1) & self.mask as usize;
            }
            self.slots[idx] = g as u32 + 1;
        }
    }

    /// Folds one batch (optionally filtered by `sel`) into the group table.
    pub(crate) fn push_batch(&mut self, batch: &ColumnBatch, sel: Option<&[u32]>) {
        let n = sel.map_or(batch.len, |s| s.len());
        if n == 0 {
            return;
        }
        self.rows_in += n as u64;
        // Encode group keys column-at-a-time into the per-row scratch.
        if self.bufs.len() < n {
            self.bufs.resize_with(n, Vec::new);
        }
        for b in &mut self.bufs[..n] {
            b.clear();
        }
        for &c in &self.key_cols {
            encode_group_column(&batch.columns[c], batch.len, sel, &mut self.bufs[..n]);
        }
        // Probe/insert each row, recording its group id.
        self.reserve(n);
        self.gids.resize(n, 0);
        for p in 0..n {
            let key = &self.bufs[p];
            let h = splitmix_finish(fx_hash_bytes(key));
            let mut idx = (h & self.mask) as usize;
            let gid = loop {
                let slot = self.slots[idx];
                if slot == 0 {
                    let g = self.hashes.len() as u32;
                    self.hashes.push(h);
                    self.key_arena.extend_from_slice(key);
                    self.key_offsets.push(self.key_arena.len());
                    let row = match sel {
                        Some(s) => s[p] as usize,
                        None => p,
                    };
                    self.keys.push(
                        self.key_cols
                            .iter()
                            .map(|&c| KeyValue(batch.columns[c].get(row)))
                            .collect(),
                    );
                    for acc in &mut self.accs {
                        acc.push_group();
                    }
                    self.slots[idx] = g + 1;
                    break g;
                }
                let g = (slot - 1) as usize;
                if self.hashes[g] == h
                    && self.key_arena[self.key_offsets[g]..self.key_offsets[g + 1]] == key[..]
                {
                    break g as u32;
                }
                idx = (idx + 1) & self.mask as usize;
            };
            self.gids[p] = gid;
        }
        // Accumulate column-at-a-time.
        let gids = &self.gids[..n];
        for acc in &mut self.accs {
            acc.update(gids, batch, sel);
        }
    }

    pub(crate) fn rows_in(&self) -> u64 {
        self.rows_in
    }

    pub(crate) fn groups_out(&self) -> u64 {
        self.keys.len() as u64
    }

    /// Emits one pair per distinct group, in first-occurrence order.
    pub(crate) fn finish(self) -> Vec<(Vec<KeyValue>, Vec<AggState>)> {
        let GroupByKernel { keys, accs, .. } = self;
        let mut cols: Vec<std::vec::IntoIter<AggState>> =
            accs.into_iter().map(|a| a.finish().into_iter()).collect();
        keys.into_iter()
            .map(|k| (k, cols.iter_mut().map(|it| it.next().expect("state per group")).collect()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn mixed_values() -> Vec<Value> {
        vec![
            Value::I64(1),
            Value::Null,
            Value::str("hello"),
            Value::F64(2.5),
            Value::Bool(true),
            Value::list(vec![Value::I64(1), Value::Null]),
            Value::Bin(Arc::from(&b"\x00\xFF"[..])),
        ]
    }

    #[test]
    fn bitmap_push_get_count() {
        let mut b = Bitmap::with_capacity(3);
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
        assert_eq!(Bitmap::filled(70, true).count_ones(), 70);
        assert_eq!(Bitmap::filled(70, false).count_ones(), 0);
    }

    #[test]
    fn arena_offsets_stay_consistent() {
        let mut a = StrArena::default();
        let strs = ["", "a", "héllo", "", "—wide—"];
        for s in strs {
            a.push(s);
        }
        assert_eq!(a.len(), strs.len());
        for (i, s) in strs.iter().enumerate() {
            assert_eq!(a.get(i), *s);
        }
        // Offsets are monotone and bracket the byte buffer exactly.
        let offs = a.offsets();
        assert_eq!(offs.len(), strs.len() + 1);
        assert_eq!(offs[0], 0);
        assert!(offs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*offs.last().unwrap(), strs.iter().map(|s| s.len()).sum::<usize>());
    }

    #[test]
    fn column_representation_adapts_to_data() {
        let ints = Column::from_values(vec![Value::I64(1), Value::Null, Value::I64(3)]);
        assert!(matches!(ints.data(), ColumnData::I64(_)));
        assert!(!ints.is_valid(1));

        let strs = Column::from_values(vec![Value::str("x"), Value::Null]);
        assert!(matches!(strs.data(), ColumnData::Str(_)));

        let bools = Column::from_values(vec![Value::Bool(true), Value::Bool(false)]);
        assert!(matches!(bools.data(), ColumnData::Bool(_)));

        // Mixed scalar types and compound values fall back to boxed.
        let mixed = Column::from_values(vec![Value::I64(1), Value::str("x")]);
        assert!(matches!(mixed.data(), ColumnData::Boxed(_)));
        let lists = Column::from_values(vec![Value::list(vec![])]);
        assert!(matches!(lists.data(), ColumnData::Boxed(_)));
    }

    #[test]
    fn batch_round_trips_mixed_rows() {
        let rows: Vec<Row> =
            vec![mixed_values(), mixed_values().into_iter().rev().collect(), vec![Value::Null; 7]];
        let batch = ColumnBatch::from_rows(7, rows.clone());
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.width(), 7);
        assert_eq!(batch.to_rows(), rows);
    }

    #[test]
    fn empty_and_single_row_batches() {
        let empty = ColumnBatch::from_rows(2, vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.to_rows(), Vec::<Row>::new());
        let one = ColumnBatch::from_rows(1, vec![vec![Value::F64(f64::NAN)]]);
        let back = one.to_rows();
        // NaN round-trips by bit pattern.
        match &back[0][0] {
            Value::F64(x) => assert!(x.is_nan()),
            other => panic!("expected F64, got {other:?}"),
        }
    }

    #[test]
    fn selection_vector_filters_only_definite_true() {
        let rows: Vec<Row> = vec![
            vec![Value::I64(5)],
            vec![Value::Null],
            vec![Value::I64(50)],
            vec![Value::str("not a number")],
        ];
        let batch = ColumnBatch::from_rows(1, rows);
        // col0 > 10 — NULL and the incompatible string both drop.
        let pred = BoundExpr::Cmp(
            Box::new(BoundExpr::Col(0)),
            CmpOp::Gt,
            Box::new(BoundExpr::Lit(Value::I64(10))),
        );
        assert_eq!(selection(&pred, &batch), vec![2]);
        let kept = batch.gather(&selection(&pred, &batch));
        assert_eq!(kept.to_rows(), vec![vec![Value::I64(50)]]);
    }

    #[test]
    fn explode_kernel_matches_row_semantics() {
        let rows: Vec<Row> = vec![
            vec![Value::I64(1), Value::list(vec![Value::str("a"), Value::str("b")])],
            vec![Value::I64(2), Value::list(vec![])],
            vec![Value::I64(3), Value::Null],
            vec![Value::I64(4), Value::str("not a list")],
            vec![Value::I64(5), Value::list(vec![Value::Null])],
        ];
        let batch = ColumnBatch::from_rows(2, rows);
        let out = explode(&batch, 1);
        assert_eq!(
            out.to_rows(),
            vec![
                vec![Value::I64(1), Value::str("a")],
                vec![Value::I64(1), Value::str("b")],
                vec![Value::I64(5), Value::Null],
            ]
        );
    }

    #[test]
    fn key_kernels_encode_rows() {
        let rows: Vec<Row> =
            vec![vec![Value::I64(2), Value::str("b")], vec![Value::Null, Value::str("a")]];
        let batch = ColumnBatch::from_rows(2, rows);
        let gk = group_keys(&batch, &[0, 1]);
        assert_eq!(gk.len(), 2);
        assert_eq!(gk[0][0], KeyValue(Value::I64(2)));
        assert_eq!(gk[1][0], KeyValue(Value::Null));
        let sk = sort_keys(&batch, &[(0, SortDir::asc())]);
        // NULL sorts first under ascending nulls-first.
        assert!(sk[1][0] < sk[0][0]);
    }

    #[test]
    fn validity_carries_across_batch_seams() {
        // Split one logical column at an awkward seam (mid-word for the
        // bitmaps) and check both halves agree with the whole.
        let values: Vec<Value> =
            (0..100).map(|i| if i % 7 == 0 { Value::Null } else { Value::I64(i) }).collect();
        let whole = Column::from_values(values.clone());
        let first = Column::from_values(values[..37].to_vec());
        let second = Column::from_values(values[37..].to_vec());
        for i in 0..100 {
            let got = if i < 37 { first.get(i) } else { second.get(i - 37) };
            assert_eq!(got, whole.get(i), "slot {i}");
        }
        assert_eq!(
            first.validity.count_ones() + second.validity.count_ones(),
            whole.validity.count_ones()
        );
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::I64),
            any::<f64>().prop_map(Value::F64),
            "[a-z]{0,12}".prop_map(Value::str),
            prop::collection::vec(any::<u8>(), 0..8)
                .prop_map(|b| Value::Bin(Arc::from(b.as_slice()))),
            prop::collection::vec(any::<i64>(), 0..4)
                .prop_map(|v| Value::list(v.into_iter().map(Value::I64).collect())),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Any column of arbitrary values — homogeneous or mixed, with NULLs,
        // NaNs and compound values — round-trips row→columnar→row
        // losslessly (f64 by bit pattern).
        #[test]
        fn any_column_round_trips(values in prop::collection::vec(arb_value(), 0..50)) {
            let col = Column::from_values(values.clone());
            prop_assert_eq!(col.len(), values.len());
            for (i, v) in values.iter().enumerate() {
                let got = col.get(i);
                let same = match (&got, v) {
                    (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
                    (a, b) => a == b,
                };
                prop_assert!(same, "slot {} changed: {:?} vs {:?}", i, got, v);
                prop_assert_eq!(col.is_valid(i), !v.is_null());
            }
        }

        // Gather preserves values under any selection vector (with
        // repetition and reordering).
        #[test]
        fn gather_preserves_values(
            values in prop::collection::vec(arb_value(), 1..40),
            picks in prop::collection::vec(any::<u32>(), 0..60),
        ) {
            let col = Column::from_values(values.clone());
            let sel: Vec<u32> = picks.iter().map(|p| p % values.len() as u32).collect();
            let gathered = col.gather(&sel);
            prop_assert_eq!(gathered.len(), sel.len());
            for (out, &src) in sel.iter().enumerate() {
                let (a, b) = (gathered.get(out), col.get(src as usize));
                let same = match (&a, &b) {
                    (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
                    (x, y) => x == y,
                };
                prop_assert!(same, "gathered slot {} differs", out);
            }
        }
    }

    // --- normalized-key sort encoding ---

    /// Values with nested lists (lists of lists, lists of mixed scalars) on
    /// top of [`arb_value`]'s flat shapes.
    fn arb_deep_value() -> impl Strategy<Value = Value> {
        arb_value().prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Value::list)
        })
    }

    /// All four direction × null-placement combinations.
    fn sort_dirs() -> [SortDir; 4] {
        [
            SortDir::asc(),
            SortDir::asc().with_nulls_last(true),
            SortDir::desc(),
            SortDir::desc().with_nulls_last(false),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // memcmp on encoded keys realizes exactly the comparator the row
        // path uses — same order AND same ties (equal bytes iff the
        // `SortKey`s compare Equal), under every direction/null placement.
        #[test]
        fn sort_encoding_matches_sort_key_order(a in arb_deep_value(), b in arb_deep_value()) {
            for dir in sort_dirs() {
                let (mut ka, mut kb) = (Vec::new(), Vec::new());
                encode_sort_cell(&mut ka, &a, dir);
                encode_sort_cell(&mut kb, &b, dir);
                let by_bytes = ka.cmp(&kb);
                let by_key = SortKey::new(a.clone(), dir).cmp(&SortKey::new(b.clone(), dir));
                prop_assert_eq!(by_bytes, by_key, "dir {:?}: {:?} vs {:?}", dir, &a, &b);
            }
        }

        // Per-cell encodings are prefix-free, so the concatenated row key
        // compares like the lexicographic `Vec<SortKey>` comparison even
        // when an early key of one row is a byte-prefix of the other's.
        #[test]
        fn multi_key_row_encoding_is_lexicographic(
            ra in prop::collection::vec(arb_value(), 3..4),
            rb in prop::collection::vec(arb_value(), 3..4),
            dirs in prop::collection::vec(0usize..4, 3..4),
        ) {
            let spec: Vec<(usize, SortDir)> =
                dirs.iter().enumerate().map(|(i, &d)| (i, sort_dirs()[d])).collect();
            let keys = |row: &[Value]| -> Vec<SortKey> {
                spec.iter().map(|&(i, d)| SortKey::new(row[i].clone(), d)).collect()
            };
            prop_assert_eq!(
                encode_row_sort_key(&ra, &spec).cmp(&encode_row_sort_key(&rb, &spec)),
                keys(&ra).cmp(&keys(&rb))
            );
        }

        // The batch kernel produces byte-for-byte the same encoding as the
        // per-row encoder the sort pipeline uses at shuffle boundaries.
        #[test]
        fn sort_key_bytes_kernel_matches_row_encoder(
            rows in prop::collection::vec(prop::collection::vec(arb_value(), 2..3), 0..30),
            dirs in prop::collection::vec(0usize..4, 2..3),
        ) {
            let spec: Vec<(usize, SortDir)> =
                dirs.iter().enumerate().map(|(i, &d)| (i, sort_dirs()[d])).collect();
            let batch = ColumnBatch::from_rows(2, rows.clone());
            let got = sort_key_bytes(&batch, &spec);
            prop_assert_eq!(got.len(), rows.len());
            for (row, key) in rows.iter().zip(&got) {
                prop_assert_eq!(key, &encode_row_sort_key(row, &spec));
            }
        }

        // --- group identity encoding ---

        // Group-key bytes are equality-faithful: equal bytes exactly when
        // the `KeyValue`s are equal (I64(1), F64(1.0), Str("1") and
        // Bool(true) all stay distinct; F64 compares by bit pattern).
        #[test]
        fn group_encoding_is_equality_faithful(a in arb_deep_value(), b in arb_deep_value()) {
            let (mut ka, mut kb) = (Vec::new(), Vec::new());
            encode_group_value(&mut ka, &a);
            encode_group_value(&mut kb, &b);
            prop_assert_eq!(ka == kb, KeyValue(a.clone()) == KeyValue(b.clone()));
        }

        // Every value round-trips through the group encoding bit-exactly
        // with no trailing bytes.
        #[test]
        fn group_encoding_round_trips(v in arb_deep_value()) {
            let mut bytes = Vec::new();
            encode_group_value(&mut bytes, &v);
            let (decoded, rest) = decode_group_value(&bytes).expect("well-formed encoding");
            prop_assert!(rest.is_empty());
            prop_assert_eq!(KeyValue(decoded), KeyValue(v));
        }
    }

    #[test]
    fn group_encoding_keeps_numeric_twins_distinct() {
        let twins = [
            Value::I64(1),
            Value::F64(1.0),
            Value::str("1"),
            Value::Bool(true),
            Value::Null,
            Value::list(vec![Value::I64(1)]),
        ];
        let encs: Vec<Vec<u8>> = twins
            .iter()
            .map(|v| {
                let mut b = Vec::new();
                encode_group_value(&mut b, v);
                b
            })
            .collect();
        for i in 0..encs.len() {
            for j in i + 1..encs.len() {
                assert_ne!(encs[i], encs[j], "{:?} vs {:?}", twins[i], twins[j]);
            }
        }
    }

    // --- vectorized group-by kernel ---

    /// Low-cardinality keys that force collisions across *types* too:
    /// `I64(1)` and `F64(1.0)` land in the pool together, so a kernel that
    /// conflated numerically-equal keys of different types would fail.
    fn arb_group_key() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            (0i64..4).prop_map(Value::I64),
            (0i64..3).prop_map(|i| Value::F64(i as f64)),
            "[ab]{0,2}".prop_map(Value::str),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    /// Aggregation payloads: everything [`arb_value`] makes, plus the i64
    /// extremes so `SUM` overflow (the `Some(Null)` poison state) occurs.
    fn arb_agg_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            arb_value(),
            arb_value(),
            arb_value(),
            Just(Value::I64(i64::MAX)),
            Just(Value::I64(i64::MIN)),
        ]
    }

    /// One spec per aggregate kind, all over the value column `vi`.
    fn all_agg_specs(vi: usize) -> Vec<(Agg, Option<usize>)> {
        vec![
            (Agg::Count, None),
            (Agg::CountCol("v".into()), Some(vi)),
            (Agg::Sum("v".into()), Some(vi)),
            (Agg::Avg("v".into()), Some(vi)),
            (Agg::Min("v".into()), Some(vi)),
            (Agg::Max("v".into()), Some(vi)),
            (Agg::First("v".into()), Some(vi)),
            (Agg::CollectList("v".into()), Some(vi)),
        ]
    }

    /// The row path's map-side combine, verbatim: create one state per row,
    /// merge into the first-occurrence slot.
    fn reference_group_by(
        rows: &[Row],
        key_cols: &[usize],
        specs: &[(Agg, Option<usize>)],
    ) -> Vec<(Vec<KeyValue>, Vec<AggState>)> {
        let mut index: std::collections::HashMap<Vec<KeyValue>, usize> = Default::default();
        let mut out: Vec<(Vec<KeyValue>, Vec<AggState>)> = Vec::new();
        for row in rows {
            let keys: Vec<KeyValue> = key_cols.iter().map(|&i| KeyValue(row[i].clone())).collect();
            let states: Vec<AggState> =
                specs.iter().map(|(a, idx)| AggState::create(a, idx.map(|i| &row[i]))).collect();
            match index.get(&keys) {
                Some(&g) => {
                    let old = std::mem::take(&mut out[g].1);
                    out[g].1 = old.into_iter().zip(states).map(|(a, b)| a.merge(b)).collect();
                }
                None => {
                    index.insert(keys.clone(), out.len());
                    out.push((keys, states));
                }
            }
        }
        out
    }

    /// Compares group-by outputs through the shuffle wire codec, which is
    /// sensitive to everything that must match: group order, key identity,
    /// f64 bits, and `Sum`'s `None` vs `Some(Null)` distinction.
    fn wire_bytes(pairs: &[(Vec<KeyValue>, Vec<AggState>)]) -> Vec<u8> {
        use crate::CacheCodec;
        super::super::plan::GroupPairCodec.encode(pairs)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // The vectorized kernel produces wire-identical output to the row
        // path's fold — all eight aggregate kinds, two mixed-type key
        // columns, any batching seam.
        #[test]
        fn group_kernel_matches_row_fold(
            rows in prop::collection::vec((arb_group_key(), arb_group_key(), arb_agg_value()), 0..120),
            chunk_sel in 0usize..3,
        ) {
            let chunk = [1usize, 3, 1024][chunk_sel];
            let rows: Vec<Row> = rows.into_iter().map(|(a, b, v)| vec![a, b, v]).collect();
            let specs = all_agg_specs(2);
            let expect = reference_group_by(&rows, &[0, 1], &specs);
            let mut kernel = GroupByKernel::new(vec![0, 1], &specs);
            for c in rows.chunks(chunk) {
                kernel.push_batch(&ColumnBatch::from_rows(3, c.to_vec()), None);
            }
            prop_assert_eq!(kernel.rows_in(), rows.len() as u64);
            prop_assert_eq!(kernel.groups_out(), expect.len() as u64);
            prop_assert_eq!(wire_bytes(&kernel.finish()), wire_bytes(&expect));
        }

        // A selection vector restricts the kernel to exactly the selected
        // rows, in batch order.
        #[test]
        fn group_kernel_respects_selection_vectors(
            rows in prop::collection::vec((arb_group_key(), arb_agg_value(), any::<bool>()), 0..80),
        ) {
            let specs = all_agg_specs(1);
            let kept: Vec<Row> = rows
                .iter()
                .filter(|(_, _, keep)| *keep)
                .map(|(k, v, _)| vec![k.clone(), v.clone()])
                .collect();
            let expect = reference_group_by(&kept, &[0], &specs);
            let mut kernel = GroupByKernel::new(vec![0], &specs);
            for c in rows.chunks(7) {
                let batch = ColumnBatch::from_rows(
                    2,
                    c.iter().map(|(k, v, _)| vec![k.clone(), v.clone()]).collect(),
                );
                let sel: Vec<u32> = c
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, _, keep))| *keep)
                    .map(|(i, _)| i as u32)
                    .collect();
                kernel.push_batch(&batch, Some(&sel));
            }
            prop_assert_eq!(wire_bytes(&kernel.finish()), wire_bytes(&expect));
        }

        // The reduce-side bucket merge — open-addressed probing plus the
        // in-place `AggState::merge_ref` — is wire-identical to the
        // insertion-ordered fold over owned `AggState::merge`, which is
        // what `ShuffledRdd`'s generic reduce merge computes. All eight
        // aggregate kinds, duplicate keys in arbitrary stream positions.
        #[test]
        fn bucket_merge_matches_owned_merge_fold(
            rows in prop::collection::vec((arb_group_key(), arb_agg_value()), 0..120),
        ) {
            let specs = all_agg_specs(1);
            let rows: Vec<Row> = rows.into_iter().map(|(k, v)| vec![k, v]).collect();
            let expect = reference_group_by(&rows, &[0], &specs);
            let pairs: Vec<(Vec<KeyValue>, Vec<AggState>)> = rows
                .iter()
                .map(|row| {
                    let keys = vec![KeyValue(row[0].clone())];
                    let states = specs
                        .iter()
                        .map(|(a, idx)| AggState::create(a, idx.map(|i| &row[i])))
                        .collect();
                    (keys, states)
                })
                .collect();
            prop_assert_eq!(wire_bytes(&merge_group_pairs(&pairs)), wire_bytes(&expect));
        }
    }

    #[test]
    fn group_kernel_emits_first_occurrence_order() {
        let rows: Vec<Row> = vec![
            vec![Value::str("b"), Value::I64(1)],
            vec![Value::str("a"), Value::I64(2)],
            vec![Value::str("b"), Value::I64(3)],
            vec![Value::Null, Value::I64(4)],
        ];
        let specs = vec![(Agg::Sum("v".into()), Some(1))];
        let mut kernel = GroupByKernel::new(vec![0], &specs);
        kernel.push_batch(&ColumnBatch::from_rows(2, rows), None);
        let keys: Vec<Value> = kernel.finish().into_iter().map(|(k, _)| k[0].0.clone()).collect();
        assert_eq!(keys, vec![Value::str("b"), Value::str("a"), Value::Null]);
    }

    #[test]
    fn group_kernel_grows_past_initial_capacity() {
        let specs = vec![(Agg::Count, None)];
        let mut kernel = GroupByKernel::new(vec![0], &specs);
        let rows: Vec<Row> = (0..5000).map(|i| vec![Value::I64(i % 2500)]).collect();
        for c in rows.chunks(97) {
            kernel.push_batch(&ColumnBatch::from_rows(1, c.to_vec()), None);
        }
        assert_eq!((kernel.rows_in(), kernel.groups_out()), (5000, 2500));
        let got = kernel.finish();
        assert_eq!(got.len(), 2500);
        // First-occurrence order survives the table rebuilds on growth.
        assert_eq!(got[17].0[0], KeyValue(Value::I64(17)));
        assert!(got.iter().all(|(_, s)| matches!(s[0], AggState::Count(2))));
    }
}
