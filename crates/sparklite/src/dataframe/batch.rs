//! Columnar batches and vectorized operator kernels.
//!
//! A [`ColumnBatch`] stores a slice of rows column-major: `I64`/`F64`
//! columns as native vectors, booleans as bitsets, strings as a byte arena
//! with an offset array, and everything else (lists, binaries, mixed-type
//! columns) as boxed [`Value`]s — each paired with a validity bitmap marking
//! non-NULL slots. Kernels evaluate [`BoundExpr`]s over whole batches with
//! typed fast paths, filter through selection vectors, and materialize the
//! §4.7 group/sort key encodings per batch. The physical plan
//! ([`super::plan::compile`]) converts rows to batches after every shuffle
//! or RDD boundary and back before the next one, so [`super::RowCodec`]
//! stays the only wire/persist format.
//!
//! Every kernel replicates the row interpreter's semantics *exactly* — the
//! shared primitives (`truth`, `eval_cmp`, `eval_num`) live in
//! [`super::expr`] and the row-vs-columnar differential battery
//! (`tests/columnar_diff.rs`) pins byte-identical results.
//!
//! Invariant threaded through everything: a slot's validity bit is clear
//! **iff** its logical value is `NULL`. `Column::get` reconstructs `NULL`
//! from a clear bit, so typed storage never needs a NULL sentinel.

use super::expr::{self, BoundExpr, CmpOp, KeyValue, NumOp, SortDir, SortKey};
use super::{Row, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// A packed bitset; doubles as validity bitmap and boolean column storage.
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn with_capacity(bits: usize) -> Bitmap {
        Bitmap { words: Vec::with_capacity(bits.div_ceil(64)), len: 0 }
    }

    /// A bitmap of `len` identical bits.
    pub fn filled(len: usize, bit: bool) -> Bitmap {
        let word = if bit { u64::MAX } else { 0 };
        Bitmap { words: vec![word; len.div_ceil(64)], len }
    }

    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of bounds ({})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn count_ones(&self) -> usize {
        let mut n: usize = self.words.iter().map(|w| w.count_ones() as usize).sum();
        // Mask out garbage bits `filled(len, true)` leaves past `len`.
        if !self.len.is_multiple_of(64) {
            if let Some(last) = self.words.last() {
                n -= (last >> (self.len % 64)).count_ones() as usize;
            }
        }
        n
    }
}

/// A byte arena of UTF-8 strings with an offset array: `offsets[i]..
/// offsets[i+1]` delimits string `i`. One allocation per column instead of
/// one `Arc<str>` per cell.
#[derive(Debug, Clone)]
pub struct StrArena {
    bytes: Vec<u8>,
    offsets: Vec<usize>,
}

impl Default for StrArena {
    fn default() -> Self {
        StrArena { bytes: Vec::new(), offsets: vec![0] }
    }
}

impl StrArena {
    pub fn push(&mut self, s: &str) {
        self.bytes.extend_from_slice(s.as_bytes());
        self.offsets.push(self.bytes.len());
    }

    pub fn get(&self, i: usize) -> &str {
        let slice = &self.bytes[self.offsets[i]..self.offsets[i + 1]];
        std::str::from_utf8(slice).expect("arena bytes come from &str pushes")
    }

    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// The offset array, exposed so tests can check its integrity.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

/// Physical storage of one column's non-NULL slots. Invalid (NULL) slots
/// hold an arbitrary placeholder in typed storage and `Value::Null` in
/// boxed storage.
#[derive(Debug, Clone)]
pub enum ColumnData {
    I64(Vec<i64>),
    F64(Vec<f64>),
    Bool(Bitmap),
    Str(StrArena),
    /// Fallback for lists, binaries and mixed-type columns.
    Boxed(Vec<Value>),
}

/// One column of a batch: typed storage plus a validity bitmap.
#[derive(Debug, Clone)]
pub struct Column {
    validity: Bitmap,
    data: ColumnData,
}

/// Typed storage being grown one value at a time; [`BuilderState::Empty`]
/// means only NULLs have been seen so far.
enum BuilderState {
    Empty,
    I64(Vec<i64>),
    F64(Vec<f64>),
    Bool(Bitmap),
    Str(StrArena),
    Boxed(Vec<Value>),
}

impl BuilderState {
    /// Rebuilds every slot pushed so far as a boxed value (the degrade path
    /// when a column turns out to be mixed-type).
    fn reconstruct(self, validity: &Bitmap) -> Vec<Value> {
        let n = validity.len();
        let mut out = Vec::with_capacity(n + 1);
        let valid = |i: usize| validity.get(i);
        match self {
            BuilderState::Empty => out.extend((0..n).map(|_| Value::Null)),
            BuilderState::I64(v) => {
                out.extend((0..n).map(|i| if valid(i) { Value::I64(v[i]) } else { Value::Null }))
            }
            BuilderState::F64(v) => {
                out.extend((0..n).map(|i| if valid(i) { Value::F64(v[i]) } else { Value::Null }))
            }
            BuilderState::Bool(b) => {
                out.extend(
                    (0..n).map(|i| if valid(i) { Value::Bool(b.get(i)) } else { Value::Null }),
                )
            }
            BuilderState::Str(a) => {
                out.extend(
                    (0..n).map(|i| if valid(i) { Value::str(a.get(i)) } else { Value::Null }),
                )
            }
            BuilderState::Boxed(v) => return v,
        }
        out
    }
}

/// Single-pass adaptive column builder: the first non-NULL value picks the
/// typed storage, every later value takes one match, and a type mismatch
/// degrades the column to boxed storage at most once. This is the hot path
/// of the row→columnar boundary, so it never buffers values or rescans.
pub struct ColumnBuilder {
    validity: Bitmap,
    state: BuilderState,
}

impl ColumnBuilder {
    pub fn with_capacity(n: usize) -> ColumnBuilder {
        ColumnBuilder { validity: Bitmap::with_capacity(n), state: BuilderState::Empty }
    }

    pub fn push(&mut self, v: Value) {
        if v.is_null() {
            match &mut self.state {
                BuilderState::Empty => {}
                BuilderState::I64(o) => o.push(0),
                BuilderState::F64(o) => o.push(0.0),
                BuilderState::Bool(o) => o.push(false),
                BuilderState::Str(o) => o.push(""),
                BuilderState::Boxed(o) => o.push(Value::Null),
            }
            self.validity.push(false);
            return;
        }
        // Fast path: the value matches the storage already chosen.
        let v = match (&mut self.state, v) {
            (BuilderState::I64(o), Value::I64(x)) => {
                o.push(x);
                self.validity.push(true);
                return;
            }
            (BuilderState::F64(o), Value::F64(x)) => {
                o.push(x);
                self.validity.push(true);
                return;
            }
            (BuilderState::Bool(o), Value::Bool(x)) => {
                o.push(x);
                self.validity.push(true);
                return;
            }
            (BuilderState::Str(o), Value::Str(s)) => {
                o.push(&s);
                self.validity.push(true);
                return;
            }
            (BuilderState::Boxed(o), v) => {
                o.push(v);
                self.validity.push(true);
                return;
            }
            (_, v) => v,
        };
        // Slow path, at most twice per column: the first non-NULL value
        // initializes typed storage (backfilling placeholders for leading
        // NULLs), and a mismatched value degrades the column to boxed.
        let nulls = self.validity.len();
        self.state = match (std::mem::replace(&mut self.state, BuilderState::Empty), v) {
            (BuilderState::Empty, Value::I64(x)) => {
                let mut o = vec![0i64; nulls];
                o.push(x);
                BuilderState::I64(o)
            }
            (BuilderState::Empty, Value::F64(x)) => {
                let mut o = vec![0.0f64; nulls];
                o.push(x);
                BuilderState::F64(o)
            }
            (BuilderState::Empty, Value::Bool(x)) => {
                let mut o = Bitmap::filled(nulls, false);
                o.push(x);
                BuilderState::Bool(o)
            }
            (BuilderState::Empty, Value::Str(s)) => {
                let mut o = StrArena::default();
                for _ in 0..nulls {
                    o.push("");
                }
                o.push(&s);
                BuilderState::Str(o)
            }
            (BuilderState::Empty, v) => {
                let mut o = vec![Value::Null; nulls];
                o.push(v);
                BuilderState::Boxed(o)
            }
            (state, v) => {
                let mut o = state.reconstruct(&self.validity);
                o.push(v);
                BuilderState::Boxed(o)
            }
        };
        self.validity.push(true);
    }

    pub fn finish(self) -> Column {
        let n = self.validity.len();
        let data = match self.state {
            // All-NULL (or empty) columns take the cheapest typed layout.
            BuilderState::Empty => ColumnData::I64(vec![0; n]),
            BuilderState::I64(o) => ColumnData::I64(o),
            BuilderState::F64(o) => ColumnData::F64(o),
            BuilderState::Bool(o) => ColumnData::Bool(o),
            BuilderState::Str(o) => ColumnData::Str(o),
            BuilderState::Boxed(o) => ColumnData::Boxed(o),
        };
        Column { validity: self.validity, data }
    }
}

impl Column {
    /// Builds a column from row values, choosing the densest representation
    /// the actual data admits: a column whose non-NULL values are all one
    /// scalar type gets native storage; anything else falls back to boxed.
    pub fn from_values(values: Vec<Value>) -> Column {
        let mut b = ColumnBuilder::with_capacity(values.len());
        for v in values {
            b.push(v);
        }
        b.finish()
    }

    /// A column repeating `v` for `n` rows (literal broadcast).
    pub fn broadcast(v: &Value, n: usize) -> Column {
        let (validity, data) = match v {
            Value::Null => (Bitmap::filled(n, false), ColumnData::I64(vec![0; n])),
            Value::I64(x) => (Bitmap::filled(n, true), ColumnData::I64(vec![*x; n])),
            Value::F64(x) => (Bitmap::filled(n, true), ColumnData::F64(vec![*x; n])),
            Value::Bool(b) => (Bitmap::filled(n, true), ColumnData::Bool(Bitmap::filled(n, *b))),
            Value::Str(s) => {
                let mut arena = StrArena::default();
                for _ in 0..n {
                    arena.push(s);
                }
                (Bitmap::filled(n, true), ColumnData::Str(arena))
            }
            other => (Bitmap::filled(n, true), ColumnData::Boxed(vec![other.clone(); n])),
        };
        Column { validity, data }
    }

    pub fn len(&self) -> usize {
        self.validity.len()
    }

    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.get(i)
    }

    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Reconstructs the logical value of slot `i`.
    pub fn get(&self, i: usize) -> Value {
        if !self.validity.get(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::I64(v) => Value::I64(v[i]),
            ColumnData::F64(v) => Value::F64(v[i]),
            ColumnData::Bool(b) => Value::Bool(b.get(i)),
            ColumnData::Str(a) => Value::str(a.get(i)),
            ColumnData::Boxed(v) => v[i].clone(),
        }
    }

    /// Copies the selected slots, in selection order, into a new column —
    /// the materialization half of a selection vector.
    pub fn gather(&self, sel: &[u32]) -> Column {
        let mut validity = Bitmap::with_capacity(sel.len());
        for &i in sel {
            validity.push(self.validity.get(i as usize));
        }
        let data = match &self.data {
            ColumnData::I64(v) => ColumnData::I64(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::F64(v) => ColumnData::F64(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Bool(b) => {
                let mut out = Bitmap::with_capacity(sel.len());
                for &i in sel {
                    out.push(b.get(i as usize));
                }
                ColumnData::Bool(out)
            }
            ColumnData::Str(a) => {
                let mut out = StrArena::default();
                for &i in sel {
                    out.push(a.get(i as usize));
                }
                ColumnData::Str(out)
            }
            ColumnData::Boxed(v) => {
                ColumnData::Boxed(sel.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        Column { validity, data }
    }
}

/// A column-major slice of rows: the unit of vectorized execution.
///
/// Columns are reference-counted so operators share rather than copy them:
/// a projection that passes a column through untouched (`with_column` keeps
/// every existing column) is a pointer bump, not a data copy. Kernels always
/// build fresh columns, so the sharing is copy-on-write by construction.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    len: usize,
    columns: Vec<Arc<Column>>,
}

impl ColumnBatch {
    /// Transposes rows into columns in a single pass. `width` fixes the
    /// column count (rows may be empty); every row must have exactly
    /// `width` values.
    pub fn from_rows(width: usize, rows: Vec<Row>) -> ColumnBatch {
        let len = rows.len();
        let mut builders: Vec<ColumnBuilder> =
            (0..width).map(|_| ColumnBuilder::with_capacity(len)).collect();
        for row in rows {
            debug_assert_eq!(row.len(), width, "row arity does not match batch width");
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v);
            }
        }
        let columns = builders.into_iter().map(|b| Arc::new(b.finish())).collect();
        ColumnBatch { len, columns }
    }

    pub fn from_columns(columns: Vec<Column>) -> ColumnBatch {
        let len = columns.first().map(|c| c.len()).unwrap_or(0);
        debug_assert!(columns.iter().all(|c| c.len() == len), "ragged batch");
        ColumnBatch { len, columns: columns.into_iter().map(Arc::new).collect() }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn width(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Reconstructs row `i`.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Transposes back to rows (the shuffle/RDD boundary conversion).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Transposes only the selected slots back to rows, in selection order —
    /// lets a fused pipeline emit a filtered batch without first gathering
    /// every column.
    pub fn to_rows_sel(&self, sel: &[u32]) -> Vec<Row> {
        sel.iter().map(|&i| self.row(i as usize)).collect()
    }

    /// Applies a selection vector to every column.
    pub fn gather(&self, sel: &[u32]) -> ColumnBatch {
        ColumnBatch {
            len: sel.len(),
            columns: self.columns.iter().map(|c| Arc::new(c.gather(sel))).collect(),
        }
    }

    /// The first `n` rows (the per-partition half of LIMIT).
    pub fn head(&self, n: usize) -> ColumnBatch {
        if n >= self.len {
            return self.clone();
        }
        let sel: Vec<u32> = (0..n as u32).collect();
        self.gather(&sel)
    }
}

// ---------------------------------------------------------------------------
// Expression kernels
// ---------------------------------------------------------------------------

/// The SQL truth value of slot `i` — `Some(bool)` only for valid booleans,
/// mirroring [`expr::truth`] on the reconstructed value.
fn truth_at(c: &Column, i: usize) -> Option<bool> {
    if !c.validity.get(i) {
        return None;
    }
    match &c.data {
        ColumnData::Bool(b) => Some(b.get(i)),
        ColumnData::Boxed(v) => expr::truth(&v[i]),
        _ => None,
    }
}

/// Builder for boolean result columns where some slots are NULL.
struct BoolBuilder {
    validity: Bitmap,
    bits: Bitmap,
}

impl BoolBuilder {
    fn with_capacity(n: usize) -> BoolBuilder {
        BoolBuilder { validity: Bitmap::with_capacity(n), bits: Bitmap::with_capacity(n) }
    }

    fn push(&mut self, v: Option<bool>) {
        self.validity.push(v.is_some());
        self.bits.push(v.unwrap_or(false));
    }

    /// Pushes a `Value` known to be `Bool` or `Null` (what `eval_cmp` and
    /// the three-valued connectives produce).
    fn push_value(&mut self, v: Value) {
        self.push(match v {
            Value::Bool(b) => Some(b),
            _ => None,
        })
    }

    fn finish(self) -> Column {
        Column { validity: self.validity, data: ColumnData::Bool(self.bits) }
    }
}

fn ord_to_bool(o: Ordering, op: CmpOp) -> bool {
    match op {
        CmpOp::Eq => o == Ordering::Equal,
        CmpOp::Ne => o != Ordering::Equal,
        CmpOp::Lt => o == Ordering::Less,
        CmpOp::Le => o != Ordering::Greater,
        CmpOp::Gt => o == Ordering::Greater,
        CmpOp::Ge => o != Ordering::Less,
    }
}

fn cmp_kernel(a: &Column, op: CmpOp, b: &Column) -> Column {
    let n = a.len();
    let mut out = BoolBuilder::with_capacity(n);
    let both = |i: usize| a.validity.get(i) && b.validity.get(i);
    match (&a.data, &b.data) {
        (ColumnData::I64(x), ColumnData::I64(y)) => {
            for i in 0..n {
                out.push(both(i).then(|| ord_to_bool(x[i].cmp(&y[i]), op)));
            }
        }
        (ColumnData::F64(x), ColumnData::F64(y)) => {
            for i in 0..n {
                let o = if both(i) { x[i].partial_cmp(&y[i]) } else { None };
                out.push(o.map(|o| ord_to_bool(o, op)));
            }
        }
        (ColumnData::I64(x), ColumnData::F64(y)) => {
            for i in 0..n {
                let o = if both(i) { (x[i] as f64).partial_cmp(&y[i]) } else { None };
                out.push(o.map(|o| ord_to_bool(o, op)));
            }
        }
        (ColumnData::F64(x), ColumnData::I64(y)) => {
            for i in 0..n {
                let o = if both(i) { x[i].partial_cmp(&(y[i] as f64)) } else { None };
                out.push(o.map(|o| ord_to_bool(o, op)));
            }
        }
        (ColumnData::Str(x), ColumnData::Str(y)) => {
            for i in 0..n {
                out.push(both(i).then(|| ord_to_bool(x.get(i).cmp(y.get(i)), op)));
            }
        }
        (ColumnData::Bool(x), ColumnData::Bool(y)) => {
            for i in 0..n {
                out.push(both(i).then(|| ord_to_bool(x.get(i).cmp(&y.get(i)), op)));
            }
        }
        // Boxed or cross-representation operands: defer to the row
        // primitive slot by slot (identical semantics by construction).
        _ => {
            for i in 0..n {
                out.push_value(expr::eval_cmp(&a.get(i), op, &b.get(i)));
            }
        }
    }
    out.finish()
}

fn num_kernel(a: &Column, op: NumOp, b: &Column) -> Column {
    let n = a.len();
    let both = |i: usize| a.validity.get(i) && b.validity.get(i);
    match (&a.data, &b.data) {
        // Integer arithmetic stays integer (checked — overflow and x % 0
        // become NULL), except division, which always yields a double.
        (ColumnData::I64(x), ColumnData::I64(y)) if op != NumOp::Div => {
            let mut validity = Bitmap::with_capacity(n);
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let r = if both(i) {
                    match op {
                        NumOp::Add => x[i].checked_add(y[i]),
                        NumOp::Sub => x[i].checked_sub(y[i]),
                        NumOp::Mul => x[i].checked_mul(y[i]),
                        NumOp::Mod => {
                            if y[i] == 0 {
                                None
                            } else {
                                x[i].checked_rem(y[i])
                            }
                        }
                        NumOp::Div => unreachable!(),
                    }
                } else {
                    None
                };
                validity.push(r.is_some());
                out.push(r.unwrap_or(0));
            }
            Column { validity, data: ColumnData::I64(out) }
        }
        (ColumnData::I64(_) | ColumnData::F64(_), ColumnData::I64(_) | ColumnData::F64(_)) => {
            let as_f64 = |data: &ColumnData, i: usize| match data {
                ColumnData::I64(v) => v[i] as f64,
                ColumnData::F64(v) => v[i],
                _ => unreachable!(),
            };
            let mut validity = Bitmap::with_capacity(n);
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                if both(i) {
                    let (x, y) = (as_f64(&a.data, i), as_f64(&b.data, i));
                    validity.push(true);
                    out.push(match op {
                        NumOp::Add => x + y,
                        NumOp::Sub => x - y,
                        NumOp::Mul => x * y,
                        NumOp::Div => x / y,
                        NumOp::Mod => x % y,
                    });
                } else {
                    validity.push(false);
                    out.push(0.0);
                }
            }
            Column { validity, data: ColumnData::F64(out) }
        }
        // Non-numeric or mixed-representation operands: slot-by-slot via
        // the row primitive; results may mix I64/F64/NULL, so rebuild.
        _ => {
            let results = (0..n).map(|i| expr::eval_num(&a.get(i), op, &b.get(i))).collect();
            Column::from_values(results)
        }
    }
}

/// Evaluates a bound expression over a whole batch, producing one column.
/// Typed columns take vectorized fast paths; UDFs and mixed-type columns
/// fall back to per-slot evaluation with identical semantics. A bare column
/// reference shares the input column instead of copying it.
pub fn eval(e: &BoundExpr, batch: &ColumnBatch) -> Arc<Column> {
    let n = batch.len();
    match e {
        BoundExpr::Col(i) => Arc::clone(&batch.columns[*i]),
        BoundExpr::Lit(v) => Arc::new(Column::broadcast(v, n)),
        BoundExpr::Cmp(a, op, b) => Arc::new(cmp_kernel(&eval(a, batch), *op, &eval(b, batch))),
        BoundExpr::Num(a, op, b) => Arc::new(num_kernel(&eval(a, batch), *op, &eval(b, batch))),
        BoundExpr::And(a, b) => {
            let (ca, cb) = (eval(a, batch), eval(b, batch));
            let mut out = BoolBuilder::with_capacity(n);
            for i in 0..n {
                out.push(match (truth_at(&ca, i), truth_at(&cb, i)) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                });
            }
            Arc::new(out.finish())
        }
        BoundExpr::Or(a, b) => {
            let (ca, cb) = (eval(a, batch), eval(b, batch));
            let mut out = BoolBuilder::with_capacity(n);
            for i in 0..n {
                out.push(match (truth_at(&ca, i), truth_at(&cb, i)) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                });
            }
            Arc::new(out.finish())
        }
        BoundExpr::Not(a) => {
            let ca = eval(a, batch);
            let mut out = BoolBuilder::with_capacity(n);
            for i in 0..n {
                out.push(truth_at(&ca, i).map(|b| !b));
            }
            Arc::new(out.finish())
        }
        BoundExpr::IsNull(a) => {
            let ca = eval(a, batch);
            let mut out = BoolBuilder::with_capacity(n);
            for i in 0..n {
                out.push(Some(!ca.validity.get(i)));
            }
            Arc::new(out.finish())
        }
        // Opaque row functions force the scalar path: materialize each row.
        BoundExpr::Udf { f, schema } => {
            let results = (0..n).map(|i| f(schema, &batch.row(i))).collect();
            Arc::new(Column::from_values(results))
        }
    }
}

// ---------------------------------------------------------------------------
// Operator kernels
// ---------------------------------------------------------------------------

/// Evaluates a filter predicate over the batch and returns the selection
/// vector of surviving row indices (only a definite `TRUE` keeps a row).
pub fn selection(pred: &BoundExpr, batch: &ColumnBatch) -> Vec<u32> {
    refine(pred, batch, None)
}

/// Refines a selection vector through a filter predicate *without*
/// materializing the batch: the predicate is evaluated over every slot
/// once, then only already-selected slots whose truth value is a definite
/// `TRUE` survive. `None` means "all slots selected". The order (ascending)
/// of the selection is preserved, so consecutive filters compose into one
/// final gather. Callers must not pass UDF predicates here with a narrowed
/// selection — built-in operators are pure and total on every value, but a
/// UDF may only observe rows that logically reach it.
pub fn refine(pred: &BoundExpr, batch: &ColumnBatch, sel: Option<Vec<u32>>) -> Vec<u32> {
    let c = eval(pred, batch);
    match sel {
        Some(s) => s.into_iter().filter(|&i| truth_at(&c, i as usize) == Some(true)).collect(),
        None => {
            (0..batch.len).filter(|&i| truth_at(&c, i) == Some(true)).map(|i| i as u32).collect()
        }
    }
}

/// Projects the batch through `exprs` (one output column per expression).
pub fn project(exprs: &[BoundExpr], batch: &ColumnBatch) -> ColumnBatch {
    ColumnBatch { len: batch.len, columns: exprs.iter().map(|e| eval(e, batch)).collect() }
}

/// EXPLODE over column `col`: one output row per list element, the list
/// column replaced by the element. NULLs and non-lists yield no rows. The
/// other columns replicate through a selection vector with repetition.
pub fn explode(batch: &ColumnBatch, col: usize) -> ColumnBatch {
    let mut parents: Vec<u32> = Vec::new();
    let mut elems: Vec<Value> = Vec::new();
    let c = &batch.columns[col];
    for i in 0..batch.len {
        if let Value::List(items) = c.get(i) {
            for v in items.iter() {
                parents.push(i as u32);
                elems.push(v.clone());
            }
        }
    }
    let mut out = batch.gather(&parents);
    out.columns[col] = Arc::new(Column::from_values(elems));
    out
}

/// Materializes §4.7 grouping keys for every row of the batch: one
/// [`KeyValue`] vector per row, hashable/equatable by exact representation.
pub fn group_keys(batch: &ColumnBatch, key_cols: &[usize]) -> Vec<Vec<KeyValue>> {
    (0..batch.len)
        .map(|i| key_cols.iter().map(|&c| KeyValue(batch.columns[c].get(i))).collect())
        .collect()
}

/// Materializes sort keys for every row of the batch: one [`SortKey`]
/// vector per row, ordered so a plain ascending sort realizes the requested
/// multi-key order.
pub fn sort_keys(batch: &ColumnBatch, spec: &[(usize, SortDir)]) -> Vec<Vec<SortKey>> {
    (0..batch.len)
        .map(|i| spec.iter().map(|&(c, d)| SortKey::new(batch.columns[c].get(i), d)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn mixed_values() -> Vec<Value> {
        vec![
            Value::I64(1),
            Value::Null,
            Value::str("hello"),
            Value::F64(2.5),
            Value::Bool(true),
            Value::list(vec![Value::I64(1), Value::Null]),
            Value::Bin(Arc::from(&b"\x00\xFF"[..])),
        ]
    }

    #[test]
    fn bitmap_push_get_count() {
        let mut b = Bitmap::with_capacity(3);
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
        assert_eq!(Bitmap::filled(70, true).count_ones(), 70);
        assert_eq!(Bitmap::filled(70, false).count_ones(), 0);
    }

    #[test]
    fn arena_offsets_stay_consistent() {
        let mut a = StrArena::default();
        let strs = ["", "a", "héllo", "", "—wide—"];
        for s in strs {
            a.push(s);
        }
        assert_eq!(a.len(), strs.len());
        for (i, s) in strs.iter().enumerate() {
            assert_eq!(a.get(i), *s);
        }
        // Offsets are monotone and bracket the byte buffer exactly.
        let offs = a.offsets();
        assert_eq!(offs.len(), strs.len() + 1);
        assert_eq!(offs[0], 0);
        assert!(offs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*offs.last().unwrap(), strs.iter().map(|s| s.len()).sum::<usize>());
    }

    #[test]
    fn column_representation_adapts_to_data() {
        let ints = Column::from_values(vec![Value::I64(1), Value::Null, Value::I64(3)]);
        assert!(matches!(ints.data(), ColumnData::I64(_)));
        assert!(!ints.is_valid(1));

        let strs = Column::from_values(vec![Value::str("x"), Value::Null]);
        assert!(matches!(strs.data(), ColumnData::Str(_)));

        let bools = Column::from_values(vec![Value::Bool(true), Value::Bool(false)]);
        assert!(matches!(bools.data(), ColumnData::Bool(_)));

        // Mixed scalar types and compound values fall back to boxed.
        let mixed = Column::from_values(vec![Value::I64(1), Value::str("x")]);
        assert!(matches!(mixed.data(), ColumnData::Boxed(_)));
        let lists = Column::from_values(vec![Value::list(vec![])]);
        assert!(matches!(lists.data(), ColumnData::Boxed(_)));
    }

    #[test]
    fn batch_round_trips_mixed_rows() {
        let rows: Vec<Row> =
            vec![mixed_values(), mixed_values().into_iter().rev().collect(), vec![Value::Null; 7]];
        let batch = ColumnBatch::from_rows(7, rows.clone());
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.width(), 7);
        assert_eq!(batch.to_rows(), rows);
    }

    #[test]
    fn empty_and_single_row_batches() {
        let empty = ColumnBatch::from_rows(2, vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.to_rows(), Vec::<Row>::new());
        let one = ColumnBatch::from_rows(1, vec![vec![Value::F64(f64::NAN)]]);
        let back = one.to_rows();
        // NaN round-trips by bit pattern.
        match &back[0][0] {
            Value::F64(x) => assert!(x.is_nan()),
            other => panic!("expected F64, got {other:?}"),
        }
    }

    #[test]
    fn selection_vector_filters_only_definite_true() {
        let rows: Vec<Row> = vec![
            vec![Value::I64(5)],
            vec![Value::Null],
            vec![Value::I64(50)],
            vec![Value::str("not a number")],
        ];
        let batch = ColumnBatch::from_rows(1, rows);
        // col0 > 10 — NULL and the incompatible string both drop.
        let pred = BoundExpr::Cmp(
            Box::new(BoundExpr::Col(0)),
            CmpOp::Gt,
            Box::new(BoundExpr::Lit(Value::I64(10))),
        );
        assert_eq!(selection(&pred, &batch), vec![2]);
        let kept = batch.gather(&selection(&pred, &batch));
        assert_eq!(kept.to_rows(), vec![vec![Value::I64(50)]]);
    }

    #[test]
    fn explode_kernel_matches_row_semantics() {
        let rows: Vec<Row> = vec![
            vec![Value::I64(1), Value::list(vec![Value::str("a"), Value::str("b")])],
            vec![Value::I64(2), Value::list(vec![])],
            vec![Value::I64(3), Value::Null],
            vec![Value::I64(4), Value::str("not a list")],
            vec![Value::I64(5), Value::list(vec![Value::Null])],
        ];
        let batch = ColumnBatch::from_rows(2, rows);
        let out = explode(&batch, 1);
        assert_eq!(
            out.to_rows(),
            vec![
                vec![Value::I64(1), Value::str("a")],
                vec![Value::I64(1), Value::str("b")],
                vec![Value::I64(5), Value::Null],
            ]
        );
    }

    #[test]
    fn key_kernels_encode_rows() {
        let rows: Vec<Row> =
            vec![vec![Value::I64(2), Value::str("b")], vec![Value::Null, Value::str("a")]];
        let batch = ColumnBatch::from_rows(2, rows);
        let gk = group_keys(&batch, &[0, 1]);
        assert_eq!(gk.len(), 2);
        assert_eq!(gk[0][0], KeyValue(Value::I64(2)));
        assert_eq!(gk[1][0], KeyValue(Value::Null));
        let sk = sort_keys(&batch, &[(0, SortDir::asc())]);
        // NULL sorts first under ascending nulls-first.
        assert!(sk[1][0] < sk[0][0]);
    }

    #[test]
    fn validity_carries_across_batch_seams() {
        // Split one logical column at an awkward seam (mid-word for the
        // bitmaps) and check both halves agree with the whole.
        let values: Vec<Value> =
            (0..100).map(|i| if i % 7 == 0 { Value::Null } else { Value::I64(i) }).collect();
        let whole = Column::from_values(values.clone());
        let first = Column::from_values(values[..37].to_vec());
        let second = Column::from_values(values[37..].to_vec());
        for i in 0..100 {
            let got = if i < 37 { first.get(i) } else { second.get(i - 37) };
            assert_eq!(got, whole.get(i), "slot {i}");
        }
        assert_eq!(
            first.validity.count_ones() + second.validity.count_ones(),
            whole.validity.count_ones()
        );
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::I64),
            any::<f64>().prop_map(Value::F64),
            "[a-z]{0,12}".prop_map(Value::str),
            prop::collection::vec(any::<u8>(), 0..8)
                .prop_map(|b| Value::Bin(Arc::from(b.as_slice()))),
            prop::collection::vec(any::<i64>(), 0..4)
                .prop_map(|v| Value::list(v.into_iter().map(Value::I64).collect())),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Any column of arbitrary values — homogeneous or mixed, with NULLs,
        // NaNs and compound values — round-trips row→columnar→row
        // losslessly (f64 by bit pattern).
        #[test]
        fn any_column_round_trips(values in prop::collection::vec(arb_value(), 0..50)) {
            let col = Column::from_values(values.clone());
            prop_assert_eq!(col.len(), values.len());
            for (i, v) in values.iter().enumerate() {
                let got = col.get(i);
                let same = match (&got, v) {
                    (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
                    (a, b) => a == b,
                };
                prop_assert!(same, "slot {} changed: {:?} vs {:?}", i, got, v);
                prop_assert_eq!(col.is_valid(i), !v.is_null());
            }
        }

        // Gather preserves values under any selection vector (with
        // repetition and reordering).
        #[test]
        fn gather_preserves_values(
            values in prop::collection::vec(arb_value(), 1..40),
            picks in prop::collection::vec(any::<u32>(), 0..60),
        ) {
            let col = Column::from_values(values.clone());
            let sel: Vec<u32> = picks.iter().map(|p| p % values.len() as u32).collect();
            let gathered = col.gather(&sel);
            prop_assert_eq!(gathered.len(), sel.len());
            for (out, &src) in sel.iter().enumerate() {
                let (a, b) = (gathered.get(out), col.get(src as usize));
                let same = match (&a, &b) {
                    (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
                    (x, y) => x == y,
                };
                prop_assert!(same, "gathered slot {} differs", out);
            }
        }
    }
}
