/root/repo/target/debug/examples/shell-952819159c829b03.d: examples/shell.rs Cargo.toml

/root/repo/target/debug/examples/libshell-952819159c829b03.rmeta: examples/shell.rs Cargo.toml

examples/shell.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
