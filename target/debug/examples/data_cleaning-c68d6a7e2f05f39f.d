/root/repo/target/debug/examples/data_cleaning-c68d6a7e2f05f39f.d: examples/data_cleaning.rs Cargo.toml

/root/repo/target/debug/examples/libdata_cleaning-c68d6a7e2f05f39f.rmeta: examples/data_cleaning.rs Cargo.toml

examples/data_cleaning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
