/root/repo/target/debug/examples/language_game-58451bdb9495c408.d: examples/language_game.rs Cargo.toml

/root/repo/target/debug/examples/liblanguage_game-58451bdb9495c408.rmeta: examples/language_game.rs Cargo.toml

examples/language_game.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
