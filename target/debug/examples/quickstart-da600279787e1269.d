/root/repo/target/debug/examples/quickstart-da600279787e1269.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-da600279787e1269: examples/quickstart.rs

examples/quickstart.rs:
