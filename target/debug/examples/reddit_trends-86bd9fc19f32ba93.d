/root/repo/target/debug/examples/reddit_trends-86bd9fc19f32ba93.d: examples/reddit_trends.rs

/root/repo/target/debug/examples/reddit_trends-86bd9fc19f32ba93: examples/reddit_trends.rs

examples/reddit_trends.rs:
