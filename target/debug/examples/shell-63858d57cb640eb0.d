/root/repo/target/debug/examples/shell-63858d57cb640eb0.d: examples/shell.rs

/root/repo/target/debug/examples/shell-63858d57cb640eb0: examples/shell.rs

examples/shell.rs:
