/root/repo/target/debug/examples/data_cleaning-04ff3e19386b8bf6.d: examples/data_cleaning.rs

/root/repo/target/debug/examples/data_cleaning-04ff3e19386b8bf6: examples/data_cleaning.rs

examples/data_cleaning.rs:
