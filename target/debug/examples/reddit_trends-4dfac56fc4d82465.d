/root/repo/target/debug/examples/reddit_trends-4dfac56fc4d82465.d: examples/reddit_trends.rs Cargo.toml

/root/repo/target/debug/examples/libreddit_trends-4dfac56fc4d82465.rmeta: examples/reddit_trends.rs Cargo.toml

examples/reddit_trends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
