/root/repo/target/debug/examples/language_game-5e734c7d71be66e0.d: examples/language_game.rs

/root/repo/target/debug/examples/language_game-5e734c7d71be66e0: examples/language_game.rs

examples/language_game.rs:
