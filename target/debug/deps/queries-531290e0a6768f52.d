/root/repo/target/debug/deps/queries-531290e0a6768f52.d: crates/core/tests/queries.rs

/root/repo/target/debug/deps/queries-531290e0a6768f52: crates/core/tests/queries.rs

crates/core/tests/queries.rs:
