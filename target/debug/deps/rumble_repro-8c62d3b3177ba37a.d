/root/repo/target/debug/deps/rumble_repro-8c62d3b3177ba37a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librumble_repro-8c62d3b3177ba37a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
