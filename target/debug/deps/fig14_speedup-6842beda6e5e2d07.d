/root/repo/target/debug/deps/fig14_speedup-6842beda6e5e2d07.d: crates/bench/benches/fig14_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_speedup-6842beda6e5e2d07.rmeta: crates/bench/benches/fig14_speedup.rs Cargo.toml

crates/bench/benches/fig14_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
