/root/repo/target/debug/deps/queries-638e2dc4ec1083ae.d: crates/core/tests/queries.rs Cargo.toml

/root/repo/target/debug/deps/libqueries-638e2dc4ec1083ae.rmeta: crates/core/tests/queries.rs Cargo.toml

crates/core/tests/queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
