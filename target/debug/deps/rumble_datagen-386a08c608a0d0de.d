/root/repo/target/debug/deps/rumble_datagen-386a08c608a0d0de.d: crates/datagen/src/lib.rs crates/datagen/src/confusion.rs crates/datagen/src/heterogeneous.rs crates/datagen/src/reddit.rs Cargo.toml

/root/repo/target/debug/deps/librumble_datagen-386a08c608a0d0de.rmeta: crates/datagen/src/lib.rs crates/datagen/src/confusion.rs crates/datagen/src/heterogeneous.rs crates/datagen/src/reddit.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/confusion.rs:
crates/datagen/src/heterogeneous.rs:
crates/datagen/src/reddit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
