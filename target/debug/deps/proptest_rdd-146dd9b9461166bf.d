/root/repo/target/debug/deps/proptest_rdd-146dd9b9461166bf.d: crates/sparklite/tests/proptest_rdd.rs

/root/repo/target/debug/deps/proptest_rdd-146dd9b9461166bf: crates/sparklite/tests/proptest_rdd.rs

crates/sparklite/tests/proptest_rdd.rs:
