/root/repo/target/debug/deps/rumble_datagen-549e53727c5366ed.d: crates/datagen/src/lib.rs crates/datagen/src/confusion.rs crates/datagen/src/heterogeneous.rs crates/datagen/src/reddit.rs Cargo.toml

/root/repo/target/debug/deps/librumble_datagen-549e53727c5366ed.rmeta: crates/datagen/src/lib.rs crates/datagen/src/confusion.rs crates/datagen/src/heterogeneous.rs crates/datagen/src/reddit.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/confusion.rs:
crates/datagen/src/heterogeneous.rs:
crates/datagen/src/reddit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
