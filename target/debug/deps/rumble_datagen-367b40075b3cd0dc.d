/root/repo/target/debug/deps/rumble_datagen-367b40075b3cd0dc.d: crates/datagen/src/lib.rs crates/datagen/src/confusion.rs crates/datagen/src/heterogeneous.rs crates/datagen/src/reddit.rs

/root/repo/target/debug/deps/librumble_datagen-367b40075b3cd0dc.rlib: crates/datagen/src/lib.rs crates/datagen/src/confusion.rs crates/datagen/src/heterogeneous.rs crates/datagen/src/reddit.rs

/root/repo/target/debug/deps/librumble_datagen-367b40075b3cd0dc.rmeta: crates/datagen/src/lib.rs crates/datagen/src/confusion.rs crates/datagen/src/heterogeneous.rs crates/datagen/src/reddit.rs

crates/datagen/src/lib.rs:
crates/datagen/src/confusion.rs:
crates/datagen/src/heterogeneous.rs:
crates/datagen/src/reddit.rs:
