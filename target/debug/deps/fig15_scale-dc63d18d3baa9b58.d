/root/repo/target/debug/deps/fig15_scale-dc63d18d3baa9b58.d: crates/bench/benches/fig15_scale.rs

/root/repo/target/debug/deps/fig15_scale-dc63d18d3baa9b58: crates/bench/benches/fig15_scale.rs

crates/bench/benches/fig15_scale.rs:
