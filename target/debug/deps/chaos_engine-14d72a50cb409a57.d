/root/repo/target/debug/deps/chaos_engine-14d72a50cb409a57.d: crates/core/tests/chaos_engine.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_engine-14d72a50cb409a57.rmeta: crates/core/tests/chaos_engine.rs Cargo.toml

crates/core/tests/chaos_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
