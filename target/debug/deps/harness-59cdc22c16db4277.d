/root/repo/target/debug/deps/harness-59cdc22c16db4277.d: crates/bench/src/bin/harness.rs

/root/repo/target/debug/deps/harness-59cdc22c16db4277: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
