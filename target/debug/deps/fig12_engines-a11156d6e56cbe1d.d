/root/repo/target/debug/deps/fig12_engines-a11156d6e56cbe1d.d: crates/bench/benches/fig12_engines.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_engines-a11156d6e56cbe1d.rmeta: crates/bench/benches/fig12_engines.rs Cargo.toml

crates/bench/benches/fig12_engines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
