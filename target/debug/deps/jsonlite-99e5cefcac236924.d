/root/repo/target/debug/deps/jsonlite-99e5cefcac236924.d: crates/jsonlite/src/lib.rs crates/jsonlite/src/error.rs crates/jsonlite/src/lines.rs crates/jsonlite/src/parse.rs crates/jsonlite/src/ser.rs crates/jsonlite/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libjsonlite-99e5cefcac236924.rmeta: crates/jsonlite/src/lib.rs crates/jsonlite/src/error.rs crates/jsonlite/src/lines.rs crates/jsonlite/src/parse.rs crates/jsonlite/src/ser.rs crates/jsonlite/src/value.rs Cargo.toml

crates/jsonlite/src/lib.rs:
crates/jsonlite/src/error.rs:
crates/jsonlite/src/lines.rs:
crates/jsonlite/src/parse.rs:
crates/jsonlite/src/ser.rs:
crates/jsonlite/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
