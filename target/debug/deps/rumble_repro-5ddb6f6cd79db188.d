/root/repo/target/debug/deps/rumble_repro-5ddb6f6cd79db188.d: src/lib.rs

/root/repo/target/debug/deps/rumble_repro-5ddb6f6cd79db188: src/lib.rs

src/lib.rs:
