/root/repo/target/debug/deps/fig15_scale-0746705e23001456.d: crates/bench/benches/fig15_scale.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_scale-0746705e23001456.rmeta: crates/bench/benches/fig15_scale.rs Cargo.toml

crates/bench/benches/fig15_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
