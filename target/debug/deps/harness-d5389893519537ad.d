/root/repo/target/debug/deps/harness-d5389893519537ad.d: crates/bench/src/bin/harness.rs

/root/repo/target/debug/deps/harness-d5389893519537ad: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
