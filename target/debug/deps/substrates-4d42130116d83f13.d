/root/repo/target/debug/deps/substrates-4d42130116d83f13.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-4d42130116d83f13.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
