/root/repo/target/debug/deps/fig12_engines-61436d2c7eb58198.d: crates/bench/benches/fig12_engines.rs

/root/repo/target/debug/deps/fig12_engines-61436d2c7eb58198: crates/bench/benches/fig12_engines.rs

crates/bench/benches/fig12_engines.rs:
