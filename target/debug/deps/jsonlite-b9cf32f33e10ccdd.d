/root/repo/target/debug/deps/jsonlite-b9cf32f33e10ccdd.d: crates/jsonlite/src/lib.rs crates/jsonlite/src/error.rs crates/jsonlite/src/lines.rs crates/jsonlite/src/parse.rs crates/jsonlite/src/ser.rs crates/jsonlite/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libjsonlite-b9cf32f33e10ccdd.rmeta: crates/jsonlite/src/lib.rs crates/jsonlite/src/error.rs crates/jsonlite/src/lines.rs crates/jsonlite/src/parse.rs crates/jsonlite/src/ser.rs crates/jsonlite/src/value.rs Cargo.toml

crates/jsonlite/src/lib.rs:
crates/jsonlite/src/error.rs:
crates/jsonlite/src/lines.rs:
crates/jsonlite/src/parse.rs:
crates/jsonlite/src/ser.rs:
crates/jsonlite/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
