/root/repo/target/debug/deps/proptest_rdd-7d226ff3e207da35.d: crates/sparklite/tests/proptest_rdd.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_rdd-7d226ff3e207da35.rmeta: crates/sparklite/tests/proptest_rdd.rs Cargo.toml

crates/sparklite/tests/proptest_rdd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
