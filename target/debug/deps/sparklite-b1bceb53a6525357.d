/root/repo/target/debug/deps/sparklite-b1bceb53a6525357.d: crates/sparklite/src/lib.rs crates/sparklite/src/conf.rs crates/sparklite/src/context.rs crates/sparklite/src/dataframe/mod.rs crates/sparklite/src/dataframe/expr.rs crates/sparklite/src/dataframe/plan.rs crates/sparklite/src/error.rs crates/sparklite/src/executor.rs crates/sparklite/src/faults.rs crates/sparklite/src/rdd/mod.rs crates/sparklite/src/rdd/pair.rs crates/sparklite/src/rdd/shuffle.rs crates/sparklite/src/rdd/util.rs crates/sparklite/src/sql/mod.rs crates/sparklite/src/sql/infer.rs crates/sparklite/src/sql/parser.rs crates/sparklite/src/storage.rs Cargo.toml

/root/repo/target/debug/deps/libsparklite-b1bceb53a6525357.rmeta: crates/sparklite/src/lib.rs crates/sparklite/src/conf.rs crates/sparklite/src/context.rs crates/sparklite/src/dataframe/mod.rs crates/sparklite/src/dataframe/expr.rs crates/sparklite/src/dataframe/plan.rs crates/sparklite/src/error.rs crates/sparklite/src/executor.rs crates/sparklite/src/faults.rs crates/sparklite/src/rdd/mod.rs crates/sparklite/src/rdd/pair.rs crates/sparklite/src/rdd/shuffle.rs crates/sparklite/src/rdd/util.rs crates/sparklite/src/sql/mod.rs crates/sparklite/src/sql/infer.rs crates/sparklite/src/sql/parser.rs crates/sparklite/src/storage.rs Cargo.toml

crates/sparklite/src/lib.rs:
crates/sparklite/src/conf.rs:
crates/sparklite/src/context.rs:
crates/sparklite/src/dataframe/mod.rs:
crates/sparklite/src/dataframe/expr.rs:
crates/sparklite/src/dataframe/plan.rs:
crates/sparklite/src/error.rs:
crates/sparklite/src/executor.rs:
crates/sparklite/src/faults.rs:
crates/sparklite/src/rdd/mod.rs:
crates/sparklite/src/rdd/pair.rs:
crates/sparklite/src/rdd/shuffle.rs:
crates/sparklite/src/rdd/util.rs:
crates/sparklite/src/sql/mod.rs:
crates/sparklite/src/sql/infer.rs:
crates/sparklite/src/sql/parser.rs:
crates/sparklite/src/storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
