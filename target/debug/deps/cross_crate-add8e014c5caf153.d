/root/repo/target/debug/deps/cross_crate-add8e014c5caf153.d: tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-add8e014c5caf153: tests/cross_crate.rs

tests/cross_crate.rs:
