/root/repo/target/debug/deps/sparklite-d0dafbf0c1c0fedb.d: crates/sparklite/src/lib.rs crates/sparklite/src/conf.rs crates/sparklite/src/context.rs crates/sparklite/src/dataframe/mod.rs crates/sparklite/src/dataframe/expr.rs crates/sparklite/src/dataframe/plan.rs crates/sparklite/src/error.rs crates/sparklite/src/executor.rs crates/sparklite/src/faults.rs crates/sparklite/src/rdd/mod.rs crates/sparklite/src/rdd/pair.rs crates/sparklite/src/rdd/shuffle.rs crates/sparklite/src/rdd/util.rs crates/sparklite/src/sql/mod.rs crates/sparklite/src/sql/infer.rs crates/sparklite/src/sql/parser.rs crates/sparklite/src/storage.rs

/root/repo/target/debug/deps/sparklite-d0dafbf0c1c0fedb: crates/sparklite/src/lib.rs crates/sparklite/src/conf.rs crates/sparklite/src/context.rs crates/sparklite/src/dataframe/mod.rs crates/sparklite/src/dataframe/expr.rs crates/sparklite/src/dataframe/plan.rs crates/sparklite/src/error.rs crates/sparklite/src/executor.rs crates/sparklite/src/faults.rs crates/sparklite/src/rdd/mod.rs crates/sparklite/src/rdd/pair.rs crates/sparklite/src/rdd/shuffle.rs crates/sparklite/src/rdd/util.rs crates/sparklite/src/sql/mod.rs crates/sparklite/src/sql/infer.rs crates/sparklite/src/sql/parser.rs crates/sparklite/src/storage.rs

crates/sparklite/src/lib.rs:
crates/sparklite/src/conf.rs:
crates/sparklite/src/context.rs:
crates/sparklite/src/dataframe/mod.rs:
crates/sparklite/src/dataframe/expr.rs:
crates/sparklite/src/dataframe/plan.rs:
crates/sparklite/src/error.rs:
crates/sparklite/src/executor.rs:
crates/sparklite/src/faults.rs:
crates/sparklite/src/rdd/mod.rs:
crates/sparklite/src/rdd/pair.rs:
crates/sparklite/src/rdd/shuffle.rs:
crates/sparklite/src/rdd/util.rs:
crates/sparklite/src/sql/mod.rs:
crates/sparklite/src/sql/infer.rs:
crates/sparklite/src/sql/parser.rs:
crates/sparklite/src/storage.rs:
