/root/repo/target/debug/deps/proptest_engine-cc84fdd220aa3e90.d: crates/core/tests/proptest_engine.rs

/root/repo/target/debug/deps/proptest_engine-cc84fdd220aa3e90: crates/core/tests/proptest_engine.rs

crates/core/tests/proptest_engine.rs:
