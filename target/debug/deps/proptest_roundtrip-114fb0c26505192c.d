/root/repo/target/debug/deps/proptest_roundtrip-114fb0c26505192c.d: crates/jsonlite/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-114fb0c26505192c: crates/jsonlite/tests/proptest_roundtrip.rs

crates/jsonlite/tests/proptest_roundtrip.rs:
