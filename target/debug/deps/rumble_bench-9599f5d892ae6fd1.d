/root/repo/target/debug/deps/rumble_bench-9599f5d892ae6fd1.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/systems.rs

/root/repo/target/debug/deps/librumble_bench-9599f5d892ae6fd1.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/systems.rs

/root/repo/target/debug/deps/librumble_bench-9599f5d892ae6fd1.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/systems.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/systems.rs:
