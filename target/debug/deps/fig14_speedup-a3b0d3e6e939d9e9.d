/root/repo/target/debug/deps/fig14_speedup-a3b0d3e6e939d9e9.d: crates/bench/benches/fig14_speedup.rs

/root/repo/target/debug/deps/fig14_speedup-a3b0d3e6e939d9e9: crates/bench/benches/fig14_speedup.rs

crates/bench/benches/fig14_speedup.rs:
