/root/repo/target/debug/deps/jsonlite-8d1b09c939a4a4c3.d: crates/jsonlite/src/lib.rs crates/jsonlite/src/error.rs crates/jsonlite/src/lines.rs crates/jsonlite/src/parse.rs crates/jsonlite/src/ser.rs crates/jsonlite/src/value.rs

/root/repo/target/debug/deps/libjsonlite-8d1b09c939a4a4c3.rlib: crates/jsonlite/src/lib.rs crates/jsonlite/src/error.rs crates/jsonlite/src/lines.rs crates/jsonlite/src/parse.rs crates/jsonlite/src/ser.rs crates/jsonlite/src/value.rs

/root/repo/target/debug/deps/libjsonlite-8d1b09c939a4a4c3.rmeta: crates/jsonlite/src/lib.rs crates/jsonlite/src/error.rs crates/jsonlite/src/lines.rs crates/jsonlite/src/parse.rs crates/jsonlite/src/ser.rs crates/jsonlite/src/value.rs

crates/jsonlite/src/lib.rs:
crates/jsonlite/src/error.rs:
crates/jsonlite/src/lines.rs:
crates/jsonlite/src/parse.rs:
crates/jsonlite/src/ser.rs:
crates/jsonlite/src/value.rs:
