/root/repo/target/debug/deps/proptest_roundtrip-42296ded58dec495.d: crates/jsonlite/tests/proptest_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_roundtrip-42296ded58dec495.rmeta: crates/jsonlite/tests/proptest_roundtrip.rs Cargo.toml

crates/jsonlite/tests/proptest_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
