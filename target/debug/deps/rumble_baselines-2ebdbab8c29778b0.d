/root/repo/target/debug/deps/rumble_baselines-2ebdbab8c29778b0.d: crates/baselines/src/lib.rs crates/baselines/src/handtuned.rs crates/baselines/src/naive.rs crates/baselines/src/pyspark.rs crates/baselines/src/rawspark.rs crates/baselines/src/sparksql.rs Cargo.toml

/root/repo/target/debug/deps/librumble_baselines-2ebdbab8c29778b0.rmeta: crates/baselines/src/lib.rs crates/baselines/src/handtuned.rs crates/baselines/src/naive.rs crates/baselines/src/pyspark.rs crates/baselines/src/rawspark.rs crates/baselines/src/sparksql.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/handtuned.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/pyspark.rs:
crates/baselines/src/rawspark.rs:
crates/baselines/src/sparksql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
