/root/repo/target/debug/deps/chaos-4ea171d6340949ac.d: crates/sparklite/tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-4ea171d6340949ac.rmeta: crates/sparklite/tests/chaos.rs Cargo.toml

crates/sparklite/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
