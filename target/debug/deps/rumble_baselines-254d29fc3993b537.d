/root/repo/target/debug/deps/rumble_baselines-254d29fc3993b537.d: crates/baselines/src/lib.rs crates/baselines/src/handtuned.rs crates/baselines/src/naive.rs crates/baselines/src/pyspark.rs crates/baselines/src/rawspark.rs crates/baselines/src/sparksql.rs

/root/repo/target/debug/deps/librumble_baselines-254d29fc3993b537.rlib: crates/baselines/src/lib.rs crates/baselines/src/handtuned.rs crates/baselines/src/naive.rs crates/baselines/src/pyspark.rs crates/baselines/src/rawspark.rs crates/baselines/src/sparksql.rs

/root/repo/target/debug/deps/librumble_baselines-254d29fc3993b537.rmeta: crates/baselines/src/lib.rs crates/baselines/src/handtuned.rs crates/baselines/src/naive.rs crates/baselines/src/pyspark.rs crates/baselines/src/rawspark.rs crates/baselines/src/sparksql.rs

crates/baselines/src/lib.rs:
crates/baselines/src/handtuned.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/pyspark.rs:
crates/baselines/src/rawspark.rs:
crates/baselines/src/sparksql.rs:
