/root/repo/target/debug/deps/proptest_plan-27df1513e7b4cf83.d: crates/sparklite/tests/proptest_plan.rs

/root/repo/target/debug/deps/proptest_plan-27df1513e7b4cf83: crates/sparklite/tests/proptest_plan.rs

crates/sparklite/tests/proptest_plan.rs:
