/root/repo/target/debug/deps/fig13_cluster-aa29369d2e289ae2.d: crates/bench/benches/fig13_cluster.rs

/root/repo/target/debug/deps/fig13_cluster-aa29369d2e289ae2: crates/bench/benches/fig13_cluster.rs

crates/bench/benches/fig13_cluster.rs:
