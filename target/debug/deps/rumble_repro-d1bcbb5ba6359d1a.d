/root/repo/target/debug/deps/rumble_repro-d1bcbb5ba6359d1a.d: src/lib.rs

/root/repo/target/debug/deps/librumble_repro-d1bcbb5ba6359d1a.rlib: src/lib.rs

/root/repo/target/debug/deps/librumble_repro-d1bcbb5ba6359d1a.rmeta: src/lib.rs

src/lib.rs:
