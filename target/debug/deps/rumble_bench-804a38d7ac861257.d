/root/repo/target/debug/deps/rumble_bench-804a38d7ac861257.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/systems.rs Cargo.toml

/root/repo/target/debug/deps/librumble_bench-804a38d7ac861257.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/systems.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/systems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
