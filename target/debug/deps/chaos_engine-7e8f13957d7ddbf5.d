/root/repo/target/debug/deps/chaos_engine-7e8f13957d7ddbf5.d: crates/core/tests/chaos_engine.rs

/root/repo/target/debug/deps/chaos_engine-7e8f13957d7ddbf5: crates/core/tests/chaos_engine.rs

crates/core/tests/chaos_engine.rs:
