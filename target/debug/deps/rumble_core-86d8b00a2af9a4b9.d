/root/repo/target/debug/deps/rumble_core-86d8b00a2af9a4b9.d: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/compiler.rs crates/core/src/error.rs crates/core/src/flwor/mod.rs crates/core/src/flwor/clauses.rs crates/core/src/item/mod.rs crates/core/src/item/codec.rs crates/core/src/item/decimal.rs crates/core/src/item/json.rs crates/core/src/item/ops.rs crates/core/src/runtime/mod.rs crates/core/src/runtime/exprs.rs crates/core/src/runtime/functions.rs crates/core/src/runtime/types.rs crates/core/src/semantics/mod.rs crates/core/src/semantics/diag.rs crates/core/src/semantics/passes.rs crates/core/src/syntax/mod.rs crates/core/src/syntax/ast.rs crates/core/src/syntax/lexer.rs crates/core/src/syntax/parser.rs

/root/repo/target/debug/deps/rumble_core-86d8b00a2af9a4b9: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/compiler.rs crates/core/src/error.rs crates/core/src/flwor/mod.rs crates/core/src/flwor/clauses.rs crates/core/src/item/mod.rs crates/core/src/item/codec.rs crates/core/src/item/decimal.rs crates/core/src/item/json.rs crates/core/src/item/ops.rs crates/core/src/runtime/mod.rs crates/core/src/runtime/exprs.rs crates/core/src/runtime/functions.rs crates/core/src/runtime/types.rs crates/core/src/semantics/mod.rs crates/core/src/semantics/diag.rs crates/core/src/semantics/passes.rs crates/core/src/syntax/mod.rs crates/core/src/syntax/ast.rs crates/core/src/syntax/lexer.rs crates/core/src/syntax/parser.rs

crates/core/src/lib.rs:
crates/core/src/api.rs:
crates/core/src/compiler.rs:
crates/core/src/error.rs:
crates/core/src/flwor/mod.rs:
crates/core/src/flwor/clauses.rs:
crates/core/src/item/mod.rs:
crates/core/src/item/codec.rs:
crates/core/src/item/decimal.rs:
crates/core/src/item/json.rs:
crates/core/src/item/ops.rs:
crates/core/src/runtime/mod.rs:
crates/core/src/runtime/exprs.rs:
crates/core/src/runtime/functions.rs:
crates/core/src/runtime/types.rs:
crates/core/src/semantics/mod.rs:
crates/core/src/semantics/diag.rs:
crates/core/src/semantics/passes.rs:
crates/core/src/syntax/mod.rs:
crates/core/src/syntax/ast.rs:
crates/core/src/syntax/lexer.rs:
crates/core/src/syntax/parser.rs:
