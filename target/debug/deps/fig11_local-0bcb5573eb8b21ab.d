/root/repo/target/debug/deps/fig11_local-0bcb5573eb8b21ab.d: crates/bench/benches/fig11_local.rs

/root/repo/target/debug/deps/fig11_local-0bcb5573eb8b21ab: crates/bench/benches/fig11_local.rs

crates/bench/benches/fig11_local.rs:
