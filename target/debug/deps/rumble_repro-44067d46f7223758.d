/root/repo/target/debug/deps/rumble_repro-44067d46f7223758.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librumble_repro-44067d46f7223758.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
