/root/repo/target/debug/deps/fig13_cluster-7bf13eb88de2139d.d: crates/bench/benches/fig13_cluster.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_cluster-7bf13eb88de2139d.rmeta: crates/bench/benches/fig13_cluster.rs Cargo.toml

crates/bench/benches/fig13_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
