/root/repo/target/debug/deps/language-6154b0b912e99a6d.d: crates/core/tests/language.rs Cargo.toml

/root/repo/target/debug/deps/liblanguage-6154b0b912e99a6d.rmeta: crates/core/tests/language.rs Cargo.toml

crates/core/tests/language.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
