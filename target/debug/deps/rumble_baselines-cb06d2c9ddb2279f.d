/root/repo/target/debug/deps/rumble_baselines-cb06d2c9ddb2279f.d: crates/baselines/src/lib.rs crates/baselines/src/handtuned.rs crates/baselines/src/naive.rs crates/baselines/src/pyspark.rs crates/baselines/src/rawspark.rs crates/baselines/src/sparksql.rs

/root/repo/target/debug/deps/rumble_baselines-cb06d2c9ddb2279f: crates/baselines/src/lib.rs crates/baselines/src/handtuned.rs crates/baselines/src/naive.rs crates/baselines/src/pyspark.rs crates/baselines/src/rawspark.rs crates/baselines/src/sparksql.rs

crates/baselines/src/lib.rs:
crates/baselines/src/handtuned.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/pyspark.rs:
crates/baselines/src/rawspark.rs:
crates/baselines/src/sparksql.rs:
