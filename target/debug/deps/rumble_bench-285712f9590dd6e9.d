/root/repo/target/debug/deps/rumble_bench-285712f9590dd6e9.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/systems.rs

/root/repo/target/debug/deps/rumble_bench-285712f9590dd6e9: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/systems.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/systems.rs:
