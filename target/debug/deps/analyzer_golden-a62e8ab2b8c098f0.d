/root/repo/target/debug/deps/analyzer_golden-a62e8ab2b8c098f0.d: crates/core/tests/analyzer_golden.rs Cargo.toml

/root/repo/target/debug/deps/libanalyzer_golden-a62e8ab2b8c098f0.rmeta: crates/core/tests/analyzer_golden.rs Cargo.toml

crates/core/tests/analyzer_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
