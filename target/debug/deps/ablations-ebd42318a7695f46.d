/root/repo/target/debug/deps/ablations-ebd42318a7695f46.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-ebd42318a7695f46.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
