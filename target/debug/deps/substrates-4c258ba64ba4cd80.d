/root/repo/target/debug/deps/substrates-4c258ba64ba4cd80.d: crates/bench/benches/substrates.rs

/root/repo/target/debug/deps/substrates-4c258ba64ba4cd80: crates/bench/benches/substrates.rs

crates/bench/benches/substrates.rs:
