/root/repo/target/debug/deps/fig11_local-1b11a61a87a03a5a.d: crates/bench/benches/fig11_local.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_local-1b11a61a87a03a5a.rmeta: crates/bench/benches/fig11_local.rs Cargo.toml

crates/bench/benches/fig11_local.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
