/root/repo/target/debug/deps/proptest_plan-5c16fa0274d00481.d: crates/sparklite/tests/proptest_plan.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_plan-5c16fa0274d00481.rmeta: crates/sparklite/tests/proptest_plan.rs Cargo.toml

crates/sparklite/tests/proptest_plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
