/root/repo/target/debug/deps/rumble_core-3841bcb161e4d866.d: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/compiler.rs crates/core/src/error.rs crates/core/src/flwor/mod.rs crates/core/src/flwor/clauses.rs crates/core/src/item/mod.rs crates/core/src/item/codec.rs crates/core/src/item/decimal.rs crates/core/src/item/json.rs crates/core/src/item/ops.rs crates/core/src/runtime/mod.rs crates/core/src/runtime/exprs.rs crates/core/src/runtime/functions.rs crates/core/src/runtime/types.rs crates/core/src/semantics/mod.rs crates/core/src/semantics/diag.rs crates/core/src/semantics/passes.rs crates/core/src/syntax/mod.rs crates/core/src/syntax/ast.rs crates/core/src/syntax/lexer.rs crates/core/src/syntax/parser.rs Cargo.toml

/root/repo/target/debug/deps/librumble_core-3841bcb161e4d866.rmeta: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/compiler.rs crates/core/src/error.rs crates/core/src/flwor/mod.rs crates/core/src/flwor/clauses.rs crates/core/src/item/mod.rs crates/core/src/item/codec.rs crates/core/src/item/decimal.rs crates/core/src/item/json.rs crates/core/src/item/ops.rs crates/core/src/runtime/mod.rs crates/core/src/runtime/exprs.rs crates/core/src/runtime/functions.rs crates/core/src/runtime/types.rs crates/core/src/semantics/mod.rs crates/core/src/semantics/diag.rs crates/core/src/semantics/passes.rs crates/core/src/syntax/mod.rs crates/core/src/syntax/ast.rs crates/core/src/syntax/lexer.rs crates/core/src/syntax/parser.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/api.rs:
crates/core/src/compiler.rs:
crates/core/src/error.rs:
crates/core/src/flwor/mod.rs:
crates/core/src/flwor/clauses.rs:
crates/core/src/item/mod.rs:
crates/core/src/item/codec.rs:
crates/core/src/item/decimal.rs:
crates/core/src/item/json.rs:
crates/core/src/item/ops.rs:
crates/core/src/runtime/mod.rs:
crates/core/src/runtime/exprs.rs:
crates/core/src/runtime/functions.rs:
crates/core/src/runtime/types.rs:
crates/core/src/semantics/mod.rs:
crates/core/src/semantics/diag.rs:
crates/core/src/semantics/passes.rs:
crates/core/src/syntax/mod.rs:
crates/core/src/syntax/ast.rs:
crates/core/src/syntax/lexer.rs:
crates/core/src/syntax/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
