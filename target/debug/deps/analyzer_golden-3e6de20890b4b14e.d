/root/repo/target/debug/deps/analyzer_golden-3e6de20890b4b14e.d: crates/core/tests/analyzer_golden.rs

/root/repo/target/debug/deps/analyzer_golden-3e6de20890b4b14e: crates/core/tests/analyzer_golden.rs

crates/core/tests/analyzer_golden.rs:
