/root/repo/target/debug/deps/rumble_datagen-405eed293db05da2.d: crates/datagen/src/lib.rs crates/datagen/src/confusion.rs crates/datagen/src/heterogeneous.rs crates/datagen/src/reddit.rs

/root/repo/target/debug/deps/rumble_datagen-405eed293db05da2: crates/datagen/src/lib.rs crates/datagen/src/confusion.rs crates/datagen/src/heterogeneous.rs crates/datagen/src/reddit.rs

crates/datagen/src/lib.rs:
crates/datagen/src/confusion.rs:
crates/datagen/src/heterogeneous.rs:
crates/datagen/src/reddit.rs:
