/root/repo/target/debug/deps/chaos-77ff3cbf1addd0d2.d: crates/sparklite/tests/chaos.rs

/root/repo/target/debug/deps/chaos-77ff3cbf1addd0d2: crates/sparklite/tests/chaos.rs

crates/sparklite/tests/chaos.rs:
