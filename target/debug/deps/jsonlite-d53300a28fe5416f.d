/root/repo/target/debug/deps/jsonlite-d53300a28fe5416f.d: crates/jsonlite/src/lib.rs crates/jsonlite/src/error.rs crates/jsonlite/src/lines.rs crates/jsonlite/src/parse.rs crates/jsonlite/src/ser.rs crates/jsonlite/src/value.rs

/root/repo/target/debug/deps/jsonlite-d53300a28fe5416f: crates/jsonlite/src/lib.rs crates/jsonlite/src/error.rs crates/jsonlite/src/lines.rs crates/jsonlite/src/parse.rs crates/jsonlite/src/ser.rs crates/jsonlite/src/value.rs

crates/jsonlite/src/lib.rs:
crates/jsonlite/src/error.rs:
crates/jsonlite/src/lines.rs:
crates/jsonlite/src/parse.rs:
crates/jsonlite/src/ser.rs:
crates/jsonlite/src/value.rs:
