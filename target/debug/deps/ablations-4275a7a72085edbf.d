/root/repo/target/debug/deps/ablations-4275a7a72085edbf.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-4275a7a72085edbf: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
