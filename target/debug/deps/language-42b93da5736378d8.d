/root/repo/target/debug/deps/language-42b93da5736378d8.d: crates/core/tests/language.rs

/root/repo/target/debug/deps/language-42b93da5736378d8: crates/core/tests/language.rs

crates/core/tests/language.rs:
