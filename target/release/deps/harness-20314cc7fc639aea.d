/root/repo/target/release/deps/harness-20314cc7fc639aea.d: crates/bench/src/bin/harness.rs

/root/repo/target/release/deps/harness-20314cc7fc639aea: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
