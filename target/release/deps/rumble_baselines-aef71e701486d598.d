/root/repo/target/release/deps/rumble_baselines-aef71e701486d598.d: crates/baselines/src/lib.rs crates/baselines/src/handtuned.rs crates/baselines/src/naive.rs crates/baselines/src/pyspark.rs crates/baselines/src/rawspark.rs crates/baselines/src/sparksql.rs

/root/repo/target/release/deps/librumble_baselines-aef71e701486d598.rlib: crates/baselines/src/lib.rs crates/baselines/src/handtuned.rs crates/baselines/src/naive.rs crates/baselines/src/pyspark.rs crates/baselines/src/rawspark.rs crates/baselines/src/sparksql.rs

/root/repo/target/release/deps/librumble_baselines-aef71e701486d598.rmeta: crates/baselines/src/lib.rs crates/baselines/src/handtuned.rs crates/baselines/src/naive.rs crates/baselines/src/pyspark.rs crates/baselines/src/rawspark.rs crates/baselines/src/sparksql.rs

crates/baselines/src/lib.rs:
crates/baselines/src/handtuned.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/pyspark.rs:
crates/baselines/src/rawspark.rs:
crates/baselines/src/sparksql.rs:
