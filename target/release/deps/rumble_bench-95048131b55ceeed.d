/root/repo/target/release/deps/rumble_bench-95048131b55ceeed.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/systems.rs

/root/repo/target/release/deps/librumble_bench-95048131b55ceeed.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/systems.rs

/root/repo/target/release/deps/librumble_bench-95048131b55ceeed.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/systems.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/systems.rs:
