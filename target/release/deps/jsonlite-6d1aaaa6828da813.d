/root/repo/target/release/deps/jsonlite-6d1aaaa6828da813.d: crates/jsonlite/src/lib.rs crates/jsonlite/src/error.rs crates/jsonlite/src/lines.rs crates/jsonlite/src/parse.rs crates/jsonlite/src/ser.rs crates/jsonlite/src/value.rs

/root/repo/target/release/deps/libjsonlite-6d1aaaa6828da813.rlib: crates/jsonlite/src/lib.rs crates/jsonlite/src/error.rs crates/jsonlite/src/lines.rs crates/jsonlite/src/parse.rs crates/jsonlite/src/ser.rs crates/jsonlite/src/value.rs

/root/repo/target/release/deps/libjsonlite-6d1aaaa6828da813.rmeta: crates/jsonlite/src/lib.rs crates/jsonlite/src/error.rs crates/jsonlite/src/lines.rs crates/jsonlite/src/parse.rs crates/jsonlite/src/ser.rs crates/jsonlite/src/value.rs

crates/jsonlite/src/lib.rs:
crates/jsonlite/src/error.rs:
crates/jsonlite/src/lines.rs:
crates/jsonlite/src/parse.rs:
crates/jsonlite/src/ser.rs:
crates/jsonlite/src/value.rs:
