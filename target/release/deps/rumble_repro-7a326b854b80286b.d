/root/repo/target/release/deps/rumble_repro-7a326b854b80286b.d: src/lib.rs

/root/repo/target/release/deps/librumble_repro-7a326b854b80286b.rlib: src/lib.rs

/root/repo/target/release/deps/librumble_repro-7a326b854b80286b.rmeta: src/lib.rs

src/lib.rs:
