/root/repo/target/release/deps/rumble_datagen-a2a50f164e06c194.d: crates/datagen/src/lib.rs crates/datagen/src/confusion.rs crates/datagen/src/heterogeneous.rs crates/datagen/src/reddit.rs

/root/repo/target/release/deps/librumble_datagen-a2a50f164e06c194.rlib: crates/datagen/src/lib.rs crates/datagen/src/confusion.rs crates/datagen/src/heterogeneous.rs crates/datagen/src/reddit.rs

/root/repo/target/release/deps/librumble_datagen-a2a50f164e06c194.rmeta: crates/datagen/src/lib.rs crates/datagen/src/confusion.rs crates/datagen/src/heterogeneous.rs crates/datagen/src/reddit.rs

crates/datagen/src/lib.rs:
crates/datagen/src/confusion.rs:
crates/datagen/src/heterogeneous.rs:
crates/datagen/src/reddit.rs:
