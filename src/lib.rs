//! Facade crate for the Rumble reproduction workspace.
pub use jsonlite;
pub use rumble_baselines as baselines;
pub use rumble_core as rumble;
pub use rumble_datagen as datagen;
pub use sparklite;
