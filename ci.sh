#!/usr/bin/env bash
# Offline-friendly CI gate: everything here runs without network access
# (external dependencies are vendored as shims under shims/, see DESIGN.md).
# Usage: ./ci.sh [--quick]
#   --quick   skip the release build (debug build + tests + lints only)
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
fi

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo build (debug, all targets)"
cargo build --workspace --all-targets --offline

step "cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

step "cargo test (workspace)"
cargo test --workspace --offline -q

# The chaos suite runs as part of the workspace tests above; this explicit
# pass re-runs every chaos/fault test by name so a failure is attributable
# at a glance. All injection seeds are fixed inside the tests.
step "chaos suite (fixed seeds)"
cargo test --workspace --offline -q chaos

# Same idea for the persist/cache layer: unit + property suites (LRU
# eviction, serialized round-trip, cache-vs-lineage equivalence under
# fixed-seed faults) re-run by name.
step "cache suite (fixed seeds)"
cargo test --workspace --offline -q cache

# And the observability layer: event-log golden tests (fixed-seed
# reproducibility, span pairing, timeline-vs-metrics reconciliation),
# the reconciliation property suite, and the EXPLAIN ANALYZE tests.
step "events suite (fixed seeds)"
cargo test --workspace --offline -q events
cargo test --workspace --offline -q explain_analyze

# The verified-optimizer gate: per-rule golden plans, the per-site
# differential equivalence fuzzer, and the mutation suite that proves the
# property checker and differential executor catch deliberately broken
# rules. Re-run by name so a rule regression is attributable at a glance.
step "verify-rules (golden + fuzzer + mutations)"
cargo test -p sparklite --offline -q --test rules_golden
cargo test -p sparklite --offline -q --test rule_fuzz
cargo test --offline -q --test cross_crate every_optimizer_rule

# Distributed-mode gate: protocol framing/codec round-trips, thread-mode
# cluster equivalence + lineage recovery (sparklite), then the real thing —
# worker *processes* spawned from the harness binary, exchanging shuffle
# blocks over TCP and surviving a SIGKILL mid-job (rumble-bench).
step "distributed suite (wire protocol + process executors)"
cargo test -p sparklite --offline -q --test dist
cargo test -p rumble-bench --offline -q --test dist_process

# Cluster-observability gate: executor stream-merge ordering (seq wins
# over skewed clocks, gaps and ring drops counted as lost), the
# interleaved/batched/clock-skewed merge property suite, the merged
# two-executor golden timeline (job table, :top lanes, worker process
# lanes in the Chrome trace), and the killed worker's cut-stream
# accounting. Re-run by name so a stream regression is attributable.
step "obs-dist suite (executor event streams + merged timelines)"
cargo test -p sparklite --offline -q --lib events::tests::stream_merge
cargo test -p sparklite --offline -q --test events skewed_executor_streams
cargo test -p sparklite --offline -q --test events merged_dist_timeline
cargo test -p sparklite --offline -q --test dist killed_worker

# Columnar-execution gate: the row-vs-columnar differential battery (200+
# random pipelines, both physical paths byte-compared through RowCodec)
# plus the batch kernel property suites (validity bitmaps, string arenas,
# gather under arbitrary selection vectors).
step "columnar suite (differential battery + kernel proptests)"
cargo test -p sparklite --offline -q --test columnar_diff
cargo test -p sparklite --offline -q --lib batch::tests

# Vectorized-aggregation gate: the three-way (row-major / batched fold /
# hash-kernel) group-by and normalized-key sort differentials plus the
# key-encoding property suites (order-equivalence to SortKey, group
# identity round-trips, kernel-vs-reference state equality).
step "agg suite (three-way differentials + key-encoding proptests)"
cargo test -p sparklite --offline -q --test columnar_diff group
cargo test -p sparklite --offline -q --lib batch::tests::sort
cargo test -p sparklite --offline -q --lib batch::tests::group
cargo test -p sparklite --offline -q --lib batch::tests::bucket_merge

if [[ "$QUICK" -eq 0 ]]; then
  step "cargo build --release"
  cargo build --release --offline

  # Smoke the cache figure end to end: the harness itself dies unless every
  # fault-free persisted configuration has warm <= cold, cache hits, and
  # results identical to the unpersisted run (also checked under 20% chaos).
  step "harness cache smoke"
  ./target/release/harness cache --tries 2

  # Smoke the traced harness figure: the run dies unless the event-derived
  # timeline reconciles exactly with the metrics snapshot, every JSONL
  # event-log line passes schema validation, and the Chrome trace parses.
  step "harness trace smoke"
  ./target/release/harness trace --tries 2

  # Smoke distributed mode end to end: the dist figure spawns 1/2/4 executor
  # processes, runs the Fig. 11 queries through them, and dies unless every
  # distributed run is byte-identical to the threaded baseline. The chaos
  # variant SIGKILLs a worker mid-shuffle and requires lineage recovery to
  # reproduce the baseline output exactly.
  step "harness dist smoke (process executors)"
  ./target/release/harness dist --tries 1

  step "harness chaos --kill-executor smoke"
  ./target/release/harness chaos --kill-executor --tries 1

  # Smoke the cluster-observability A/B end to end: two executor processes
  # stream their events back to the driver; the harness dies unless the
  # merged timeline reconciles exactly with the metrics snapshot, both
  # streams drain with zero lost events, the Chrome trace shows both
  # worker process lanes, and the measured overhead stays within the 3%
  # budget once it clears the run's own A/A noise floor.
  step "harness obs smoke (executor event streams)"
  ./target/release/harness obs --tries 2

  # Smoke the columnar A/B end to end: the harness dies unless the fused
  # batch pipeline is no slower than the row-major walk of the same plan
  # and both paths return byte-identical rows (BENCH_columnar.json records
  # the measured A/B).
  step "harness columnar smoke"
  ./target/release/harness columnar --tries 2

  # Smoke the vectorized-aggregation A/B end to end: the harness dies
  # unless the hash-kernel path beats the batched fold >= 1.5x on the
  # high-cardinality group-by, never loses anywhere else (unique keys,
  # skew, NULLs, the normalized-key sort), and all three physical paths —
  # plus the 20% chaos re-run and the two-process executor run — return
  # byte-identical rows (BENCH_agg.json records the measured A/B).
  step "harness agg smoke"
  ./target/release/harness agg --tries 2
fi

step "OK"
