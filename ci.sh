#!/usr/bin/env bash
# Offline-friendly CI gate: everything here runs without network access
# (external dependencies are vendored as shims under shims/, see DESIGN.md).
# Usage: ./ci.sh [--quick]
#   --quick   skip the release build (debug build + tests + lints only)
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
fi

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo build (debug, all targets)"
cargo build --workspace --all-targets --offline

step "cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

step "cargo test (workspace)"
cargo test --workspace --offline -q

if [[ "$QUICK" -eq 0 ]]; then
  step "cargo build --release"
  cargo build --release --offline
fi

step "OK"
