//! Regex-subset string generation (`proptest::string` stand-in).
//!
//! Supports the constructs the workspace's test patterns use: literals,
//! escapes, alternation, groups, character classes with ranges, the
//! quantifiers `?`, `*`, `+`, `{m}`, `{m,}`, `{m,n}`, the classes `\d`,
//! `\w`, `\s`, and `\PC` ("not a control character"). Unsupported syntax
//! degenerates to literal characters rather than erroring — these are
//! generators, not matchers.

use crate::TestRng;

/// Generates one string matching the regex-subset `pattern`.
pub fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parser = Parser { chars, pos: 0 };
    let node = parser.parse_alternation();
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

/// A printable (non-control) character: mostly ASCII with a sprinkling of
/// multi-byte code points, which is what `\PC`-style patterns are after.
pub fn printable_char(rng: &mut TestRng) -> char {
    const EXOTIC: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '☃', '😀', '\u{00A0}', '\u{2028}', '𝔘'];
    if rng.below(5) == 0 {
        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
    } else {
        char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or(' ')
    }
}

enum Node {
    /// Alternation over branches; each branch is a concatenation.
    Alt(Vec<Vec<Node>>),
    Lit(char),
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    Printable,
    Digit,
    Word,
    Space,
    Repeat(Box<Node>, u32, u32),
}

enum ClassItem {
    Ch(char),
    Range(char, char),
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_alternation(&mut self) -> Node {
        let mut branches = vec![self.parse_concat()];
        while self.eat('|') {
            branches.push(self.parse_concat());
        }
        Node::Alt(branches)
    }

    fn parse_concat(&mut self) -> Vec<Node> {
        let mut nodes = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            nodes.push(self.parse_quantifier(atom));
        }
        nodes
    }

    fn parse_atom(&mut self) -> Node {
        match self.bump().expect("parse_concat checked peek") {
            '(' => {
                // Non-capturing prefix `(?:`, if present, is cosmetic here.
                if self.peek() == Some('?') {
                    self.bump();
                    self.eat(':');
                }
                let inner = self.parse_alternation();
                self.eat(')');
                inner
            }
            '[' => self.parse_class(),
            '\\' => self.parse_escape(),
            '.' => Node::Printable,
            c => Node::Lit(c),
        }
    }

    fn parse_escape(&mut self) -> Node {
        match self.bump() {
            Some('d') => Node::Digit,
            Some('w') => Node::Word,
            Some('s') => Node::Space,
            Some('n') => Node::Lit('\n'),
            Some('t') => Node::Lit('\t'),
            Some('r') => Node::Lit('\r'),
            Some('P') | Some('p') => {
                // Unicode property; `\PC` (not control) is the only one the
                // tests use — everything printable satisfies it.
                if self.eat('{') {
                    while let Some(c) = self.bump() {
                        if c == '}' {
                            break;
                        }
                    }
                } else {
                    self.bump();
                }
                Node::Printable
            }
            Some(c) => Node::Lit(c),
            None => Node::Lit('\\'),
        }
    }

    fn parse_class(&mut self) -> Node {
        let negated = self.eat('^');
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == ']' {
                self.bump();
                break;
            }
            let lo = self.class_char();
            // A dash is a range separator unless it ends the class.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let hi = self.class_char();
                items.push(ClassItem::Range(lo, hi));
            } else {
                items.push(ClassItem::Ch(lo));
            }
        }
        if items.is_empty() {
            items.push(ClassItem::Ch('?'));
        }
        Node::Class { negated, items }
    }

    /// One (possibly escaped) character inside a class.
    fn class_char(&mut self) -> char {
        match self.bump().expect("class scanned via peek") {
            '\\' => match self.bump() {
                Some('n') => '\n',
                Some('t') => '\t',
                Some('r') => '\r',
                Some(c) => c,
                None => '\\',
            },
            c => c,
        }
    }

    fn parse_quantifier(&mut self, atom: Node) -> Node {
        match self.peek() {
            Some('?') => {
                self.bump();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.bump();
                Node::Repeat(Box::new(atom), 0, 4)
            }
            Some('+') => {
                self.bump();
                Node::Repeat(Box::new(atom), 1, 4)
            }
            Some('{') => {
                let save = self.pos;
                self.bump();
                let lo = self.parse_number();
                let hi = if self.eat(',') {
                    if self.peek() == Some('}') {
                        lo.map(|l| l + 4)
                    } else {
                        self.parse_number()
                    }
                } else {
                    lo
                };
                match (lo, hi, self.eat('}')) {
                    (Some(lo), Some(hi), true) if lo <= hi => Node::Repeat(Box::new(atom), lo, hi),
                    _ => {
                        // Not a well-formed quantifier: emit `{` literally
                        // and re-scan what followed it.
                        self.pos = save + 1;
                        Node::Alt(vec![vec![atom, Node::Lit('{')]])
                    }
                }
            }
            _ => atom,
        }
    }

    fn parse_number(&mut self) -> Option<u32> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return None;
        }
        self.chars[start..self.pos].iter().collect::<String>().parse().ok()
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(branches) => {
            let branch = &branches[rng.below(branches.len() as u64) as usize];
            for n in branch {
                emit(n, rng, out);
            }
        }
        Node::Lit(c) => out.push(*c),
        Node::Printable => out.push(printable_char(rng)),
        Node::Digit => out.push(char::from(b'0' + rng.below(10) as u8)),
        Node::Word => {
            const WORD: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
            out.push(char::from(WORD[rng.below(WORD.len() as u64) as usize]));
        }
        Node::Space => out.push([' ', '\t', '\n'][rng.below(3) as usize]),
        Node::Class { negated, items } => out.push(class_char(*negated, items, rng)),
        Node::Repeat(inner, lo, hi) => {
            let n = lo + rng.below((hi - lo + 1) as u64) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

fn class_char(negated: bool, items: &[ClassItem], rng: &mut TestRng) -> char {
    if negated {
        // Sample printables until one falls outside the class.
        for _ in 0..100 {
            let c = printable_char(rng);
            let inside = items.iter().any(|i| match i {
                ClassItem::Ch(ch) => *ch == c,
                ClassItem::Range(lo, hi) => (*lo..=*hi).contains(&c),
            });
            if !inside {
                return c;
            }
        }
        return '?';
    }
    match &items[rng.below(items.len() as u64) as usize] {
        ClassItem::Ch(c) => *c,
        ClassItem::Range(lo, hi) => {
            let span = *hi as u32 - *lo as u32 + 1;
            char::from_u32(*lo as u32 + rng.below(span as u64) as u32).unwrap_or(*lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_many(pattern: &str, n: u64) -> Vec<String> {
        (0..n)
            .map(|case| {
                let mut rng = TestRng::for_case(pattern, case);
                generate_from_regex(pattern, &mut rng)
            })
            .collect()
    }

    #[test]
    fn decimal_pattern_produces_parseable_decimals() {
        for s in gen_many("-?(0|[1-9][0-9]{0,9})\\.[0-9]{1,9}", 200) {
            assert!(s.parse::<f64>().is_ok(), "not a number: {s:?}");
            assert!(s.contains('.'), "no dot: {s:?}");
        }
    }

    #[test]
    fn class_ranges_and_counts_hold() {
        for s in gen_many("[a-z]{1,5}", 200) {
            assert!((1..=5).contains(&s.chars().count()), "bad length: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "bad char: {s:?}");
        }
    }

    #[test]
    fn printable_pattern_avoids_controls() {
        for s in gen_many("\\PC{0,80}", 100) {
            assert!(s.chars().count() <= 80);
            assert!(!s.chars().any(char::is_control), "control char in {s:?}");
        }
    }

    #[test]
    fn alternation_of_keywords() {
        let pat = "(for|let|return|\\$x|where| ){0,40}";
        for s in gen_many(pat, 50) {
            // Every generated string decomposes into the allowed tokens.
            let mut rest = s.as_str();
            while !rest.is_empty() {
                let tok = ["for", "let", "return", "$x", "where", " "]
                    .iter()
                    .find(|t| rest.starts_with(**t));
                match tok {
                    Some(t) => rest = &rest[t.len()..],
                    None => panic!("unexpected token start: {rest:?}"),
                }
            }
        }
    }

    #[test]
    fn optional_sign_and_escaped_dash_in_class() {
        let any_signed = gen_many("-?[0-9]{1,2}", 100);
        assert!(any_signed.iter().any(|s| s.starts_with('-')));
        assert!(any_signed.iter().any(|s| !s.starts_with('-')));
        for s in gen_many("[a\\-b]{3}", 50) {
            assert!(s.chars().all(|c| matches!(c, 'a' | '-' | 'b')), "{s:?}");
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        for s in gen_many("[+-]{1}", 50) {
            assert!(s == "+" || s == "-");
        }
    }
}
