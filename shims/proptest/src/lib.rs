//! Vendored stand-in for the `proptest` crate (offline build — see the note
//! in the `parking_lot` shim). Implements the generation side of the API the
//! workspace tests use:
//!
//! * [`Strategy`] with `prop_map` / `prop_filter` / `prop_recursive` / `boxed`,
//! * [`any`] for primitives, ranges and tuples as strategies, [`Just`],
//!   `prop_oneof!`, `prop::collection::vec`, and `&str` regex strategies
//!   (a pragmatic regex subset — see [`string`]),
//! * the [`proptest!`] macro expanding to deterministic looping `#[test]`
//!   functions, plus `prop_assert!` / `prop_assert_eq!`.
//!
//! There is **no shrinking**: a failing case reports its deterministic case
//! number, which is reproducible because seeding is derived from the test
//! name. `.proptest-regressions` files are ignored.

use std::sync::{Arc, OnceLock};

pub mod string;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// The per-case random source. Seeded from the test name and case index so
/// failures are reproducible run-to-run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
    /// Remaining recursion budget while inside a `prop_recursive` strategy.
    depth: Option<u32>,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15, depth: None }
    }

    /// Seeds a generator for one case of a named test.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    pub fn next_u64(&mut self) -> u64 {
        // splitmix64: solid enough for data generation.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Mirror of `proptest::test_runner::Config` for the fields the tests set.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------------
// The Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy: Send + Sync {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy behind an `Arc` (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Send + Sync,
    {
        Map { inner: self, f }
    }

    /// Retries generation until `pred` accepts a value (bounded; a strategy
    /// whose filter rejects everything panics instead of looping forever).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + Send + Sync,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Builds a recursive strategy: `recurse` receives a handle generating
    /// the whole strategy and returns the non-leaf branch. Recursion is
    /// bounded by `depth`; the size/branch hints are accepted for API
    /// compatibility and unused.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let slot: Arc<OnceLock<BoxedStrategy<Self::Value>>> = Arc::new(OnceLock::new());
        let handle = RecursionHandle { slot: Arc::clone(&slot) };
        let branch = recurse(BoxedStrategy(Arc::new(handle))).boxed();
        let full = BoxedStrategy(Arc::new(RecursiveStrategy { leaf, branch, depth }));
        slot.set(full.clone()).ok();
        full
    }
}

/// Object-safe inner trait for [`BoxedStrategy`].
trait DynStrategy<T>: Send + Sync {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cheaply-cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Send + Sync,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Send + Sync,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// `prop_recursive` internals: the handle given to the `recurse` closure
/// defers to the finished strategy (set after construction).
struct RecursionHandle<T> {
    slot: Arc<OnceLock<BoxedStrategy<T>>>,
}

impl<T> Strategy for RecursionHandle<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.slot.get().expect("recursive strategy fully constructed").generate(rng)
    }
}

struct RecursiveStrategy<T> {
    leaf: BoxedStrategy<T>,
    branch: BoxedStrategy<T>,
    depth: u32,
}

impl<T> Strategy for RecursiveStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let fresh = rng.depth.is_none();
        if fresh {
            rng.depth = Some(self.depth);
        }
        let budget = rng.depth.unwrap_or(0);
        // Branch with probability 2/3 while the budget allows, so trees are
        // usually non-trivial but always bounded.
        let v = if budget > 0 && rng.below(3) < 2 {
            *rng.depth.as_mut().expect("budget present") -= 1;
            let v = self.branch.generate(rng);
            *rng.depth.as_mut().expect("budget present") += 1;
            v
        } else {
            self.leaf.generate(rng)
        };
        if fresh {
            rng.depth = None;
        }
        v
    }
}

/// A uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Union(branches)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// A constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Send + Sync> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>() and primitive strategies
// ---------------------------------------------------------------------------

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: arbitrary values of `T`, biased toward boundary values.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1-in-8 boundary values; otherwise uniform bit patterns.
                if rng.below(8) == 0 {
                    match rng.below(4) {
                        0 => 0 as $t,
                        1 => 1 as $t,
                        2 => <$t>::MAX,
                        _ => <$t>::MIN,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        if rng.below(8) == 0 {
            [0.0, -0.0, 1.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE]
                [rng.below(8) as usize]
        } else {
            // Uniform bit patterns cover the full exponent range (and the
            // occasional NaN), which is what robustness tests want.
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        string::printable_char(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// A `&str` is a regex strategy producing matching `String`s.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_from_regex(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, lo: size.start, hi: size.end }
    }

    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts inside a `proptest!` body; failure fails the case (not the
/// process) with a report naming the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(
                format!("assertion failed: {:?} != {:?}", left, right));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a normal test running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $config:expr;) => {};
    (cfg = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strategies = ($($strategy,)+);
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case as u64,
                );
                let ($($arg,)+) =
                    $crate::Strategy::generate(&__strategies, &mut __rng);
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__message) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), __case, __config.cases, __message
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = $config; $($rest)* }
    };
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Vec<Tree>),
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = any::<i64>().prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
        })
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }

    #[test]
    fn recursive_strategies_terminate_and_nest() {
        let strat = arb_tree();
        let mut any_nested = false;
        for case in 0..200 {
            let mut rng = TestRng::for_case("recursive", case);
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4, "budget bounds recursion");
            any_nested |= depth(&t) >= 2;
        }
        assert!(any_nested, "some trees actually recurse");
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = prop::collection::vec(any::<i32>(), 0..10);
        let a = strat.generate(&mut TestRng::for_case("det", 5));
        let b = strat.generate(&mut TestRng::for_case("det", 5));
        assert_eq!(a, b);
    }

    #[test]
    fn filter_respects_predicate() {
        let strat = any::<f64>().prop_filter("finite", |v| v.is_finite());
        for case in 0..500 {
            assert!(strat.generate(&mut TestRng::for_case("filter", case)).is_finite());
        }
    }

    #[test]
    fn ranges_and_tuples() {
        let strat = (0u8..6, -50i64..50, any::<bool>());
        for case in 0..500 {
            let (a, b, _c) = strat.generate(&mut TestRng::for_case("tuple", case));
            assert!(a < 6);
            assert!((-50..50).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_itself_works(v in prop::collection::vec(any::<u8>(), 0..5), n in 1usize..4) {
            prop_assert!(v.len() < 5);
            prop_assert_eq!(n.min(3), n.min(7).min(3), "n was {}", n);
        }
    }
}
