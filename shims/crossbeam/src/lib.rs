//! Vendored stand-in for the `crossbeam` crate (offline build — see the
//! note in the `parking_lot` shim). Only [`channel`] is provided, with the
//! multi-producer **multi-consumer** semantics the executor pool relies on
//! (std's mpsc receiver cannot be cloned).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent value is handed back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty but connected.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty, disconnected channel")
                }
            }
        }
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half of an unbounded channel. Cloneable (MPMC): every
    /// message is delivered to exactly one receiver.
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.state.lock().unwrap_or_else(PoisonError::into_inner).senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            let disconnected = st.senders == 0;
            drop(st);
            if disconnected {
                // Wake all blocked receivers so they can observe the hangup.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive; `None` when the queue is currently empty
        /// (regardless of sender liveness).
        pub fn try_recv(&self) -> Option<T> {
            self.0.state.lock().unwrap_or_else(PoisonError::into_inner).queue.pop_front()
        }

        /// Blocks until a message arrives, every sender is dropped, or
        /// `timeout` elapses, whichever happens first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .0
                    .ready
                    .wait_timeout(st, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.state.lock().unwrap_or_else(PoisonError::into_inner).receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.state.lock().unwrap_or_else(PoisonError::into_inner).receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_to_cloned_receivers() {
            let (tx, rx) = unbounded::<usize>();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<usize> = workers.into_iter().flat_map(|w| w.join().unwrap()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>(), "each message delivered once");
        }

        #[test]
        fn recv_reports_hangup() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            use std::time::Duration;
            let (tx, rx) = unbounded::<i32>();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_reports_no_receivers() {
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }
    }
}
