//! Vendored stand-in for the `parking_lot` crate (the build environment has
//! no network access to crates.io, so the handful of external dependencies
//! are replaced by minimal local implementations — see DESIGN.md).
//!
//! Implements the subset the workspace uses: [`Mutex`] and [`RwLock`] whose
//! guards are returned directly (no poisoning), as in the real crate. The
//! std primitives underneath recover from poisoning by taking the inner
//! guard, which matches parking_lot's semantics of simply not tracking
//! panics.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive; `lock()` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0i64);
        *m.lock() += 41;
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "no poisoning: the lock is still usable");
    }
}
