//! Vendored stand-in for the `rand` crate, 0.8 API surface (offline build —
//! see the note in the `parking_lot` shim). Implements exactly what the
//! workspace uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`
//! over integer/float ranges. The generator is a splitmix64-seeded
//! xoshiro256++, which is deterministic per seed — the property the dataset
//! generators rely on — but is **not** bit-compatible with the real crate.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding trait matching `rand::SeedableRng`'s `seed_from_u64` entry point.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`u64`, `f64`, …).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`, 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types uniform-samplable over a bounded interval (mirrors
/// `rand::distributions::uniform::SampleUniform` so that range literals in
/// `gen_range(0..n)` infer their type from the use site).
pub trait SampleUniform: Sized {
    /// Uniform sample in `[lo, hi)` — `hi` exclusive.
    fn sample_between<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// splitmix64 (the usual seeding recipe for xoshiro-family states).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..40);
            assert!((3..40).contains(&v));
            let w = rng.gen_range(1..=12);
            assert!((1..=12).contains(&w));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let n: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
