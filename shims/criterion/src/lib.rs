//! Vendored stand-in for the `criterion` crate (offline build — see the
//! note in the `parking_lot` shim). Provides the API surface the bench
//! targets use — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! warmup-then-sample timing loop instead of criterion's statistics.

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }

    pub fn new<F: std::fmt::Display, P: std::fmt::Display>(
        function_name: F,
        parameter: P,
    ) -> BenchmarkId {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Throughput annotation; reported as elements (or bytes) per second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last run.
    mean: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup iteration, then timed samples.
        let _ = routine();
        let started = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean = started.elapsed() / self.samples.max(1) as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<N: std::fmt::Display, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.effective_samples();
        let mut b = Bencher { samples, mean: Duration::ZERO };
        f(&mut b);
        self.report(&id.to_string(), b.mean);
        self
    }

    pub fn bench_with_input<N: std::fmt::Display, I: ?Sized, F>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.effective_samples();
        let mut b = Bencher { samples, mean: Duration::ZERO };
        f(&mut b, input);
        self.report(&id.to_string(), b.mean);
        self
    }

    pub fn finish(&mut self) {}

    fn effective_samples(&self) -> usize {
        self.sample_size.min(self.criterion.max_samples).max(1)
    }

    fn report(&self, id: &str, mean: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{id}: {mean:.2?}/iter{rate}", self.name);
    }
}

/// Entry point; constructed by `criterion_main!`.
pub struct Criterion {
    /// Global cap on per-benchmark samples, so the shim stays quick.
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { max_samples: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, criterion: self }
    }

    pub fn bench_function<N: std::fmt::Display, F>(&mut self, id: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("base", f);
        self
    }
}

/// Declares a group runner function calling each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut runs = 0usize;
        g.sample_size(3)
            .throughput(Throughput::Elements(100))
            .bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs >= 3, "warmup + samples executed, got {runs}");
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut seen = 0;
        g.bench_with_input(BenchmarkId::from_parameter("7"), &7, |b, &input| {
            b.iter(|| seen = input)
        });
        assert_eq!(seen, 7);
    }
}
