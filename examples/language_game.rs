//! Analytics on the Great-Language-Game confusion dataset — the paper's
//! §6.1 workload, end to end: the filtering, grouping and sorting queries
//! of Figures 2–4, plus a leaderboard combining them.
//!
//! ```text
//! cargo run --release --example language_game [objects]
//! ```

use rumble_repro::datagen::{confusion, put_dataset, DEFAULT_SEED};
use rumble_repro::rumble::Rumble;
use rumble_repro::sparklite::{SparkliteConf, SparkliteContext};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let objects: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let sc = SparkliteContext::new(SparkliteConf::default());
    println!("generating {objects} confusion objects …");
    put_dataset(&sc, "hdfs:///confusion.json", &confusion::generate(objects, DEFAULT_SEED))?;
    let rumble = Rumble::new(sc.clone());

    // Figure 4: filter + multi-key sort + count clause.
    let t = Instant::now();
    let hardest = rumble.run_take(
        r#"
        for $i in json-file("hdfs:///confusion.json")
        where $i.guess = $i.target
        order by $i.target ascending, $i.country descending, $i.date descending
        count $c
        where $c le 5
        return { "target": $i.target, "country": $i.country, "date": $i.date }
    "#,
        5,
    )?;
    println!("\nfirst five correct guesses in sort order ({:.2?}):", t.elapsed());
    for i in &hardest {
        println!("  {i}");
    }

    // Figure 7: grouping with the count optimization.
    let t = Instant::now();
    let accuracy = rumble.run(
        r#"
        for $i in json-file("hdfs:///confusion.json")
        let $correct := if ($i.guess eq $i.target) then 1 else 0
        group by $t := $i.target
        let $n := count($i)
        let $right := sum($correct)
        order by $right div $n descending
        count $rank
        where $rank le 8
        return {
            "rank": $rank,
            "language": $t,
            "games": $n,
            "accuracy": round($right div $n, 3)
        }
    "#,
    )?;
    println!("\neasiest languages to recognize ({:.2?}):", t.elapsed());
    for i in &accuracy {
        println!("  {i}");
    }

    // Per-country counts, the aggregation of Figure 2.
    let t = Instant::now();
    let by_country = rumble.run_take(
        r#"
        for $i in json-file("hdfs:///confusion.json")
        group by $c := $i.country
        order by count($i) descending
        return { "country": $c, "games": count($i) }
    "#,
        5,
    )?;
    println!("\ntop five countries by games played ({:.2?}):", t.elapsed());
    for i in &by_country {
        println!("  {i}");
    }

    let m = sc.metrics();
    println!(
        "\ncluster metrics: {} jobs, {} tasks, {} shuffle records, {:.1} MiB input",
        m.jobs,
        m.tasks,
        m.shuffle_records,
        m.input_bytes as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}
