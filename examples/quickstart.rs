//! Quickstart: spin up an engine, load a JSON Lines dataset, run JSONiq.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rumble_repro::rumble::Rumble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Rumble engine on a local simulated cluster (one executor thread per
    // CPU core).
    let rumble = Rumble::default_local();

    // Put a small heterogeneous dataset on the simulated HDFS.
    rumble.hdfs_put(
        "/data/people.json",
        r#"{"name": "ana",  "age": 34, "languages": ["fr", "de"]}
{"name": "bob",  "age": 28}
{"name": "cyd",  "age": 41, "languages": ["en"]}
{"name": "dee",  "languages": "en"}
"#,
    )?;

    // Heterogeneity is a non-issue: `languages` can be an array, a bare
    // string, or absent; the coalescing idiom of the paper's Figure 7
    // handles all three in one expression.
    let query = r#"
        for $p in json-file("hdfs:///data/people.json")
        let $langs := ($p.languages[], $p.languages, "unknown")
        group by $first := $langs[1]
        order by $first
        return { "language": $first, "people": count($p) }
    "#;

    println!("query:\n{query}");
    let prepared = rumble.compile(query)?;
    println!("distributed: {}", prepared.is_distributed()?);
    for item in prepared.collect()? {
        println!("{item}");
    }

    // Scalar expressions work too, of course.
    let answer = rumble.run("sum(1 to 100) div 2")?;
    println!("sum(1 to 100) div 2 = {}", answer[0]);
    Ok(())
}
