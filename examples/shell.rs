//! An interactive JSONiq shell (§5.4: "Rumble is also available on a
//! shell … the output of each query is collected up to a configurable
//! maximum and printed").
//!
//! ```text
//! cargo run --release --example shell
//! rumble> for $x in parallelize(1 to 10) where $x mod 2 eq 0 return $x * $x
//! ```
//!
//! Before running a query the shell feeds it through the static analyzer
//! and prints every diagnostic — errors (which stop execution) and lint
//! warnings (which do not) — with their codes and source positions.
//!
//! Non-interactive modes:
//!
//! ```text
//! cargo run --example shell -- --lint query.jq     # analyze only; exit 1 on errors
//! cargo run --example shell -- --explain RBLW0004  # document a diagnostic code
//! cargo run --example shell -- --explain RBLO0002  # …or an optimizer rule
//! ```
//!
//! Optimizer bisection flags (before the interactive session starts):
//! `--no-opt` compiles raw plans with every rewrite disabled;
//! `--disable-rule=RBLO####` (repeatable) excludes one named rule. Use
//! them to pin a wrong-result or perf regression on a single rewrite.
//!
//! Distributed mode: `--executors N` spawns N executor worker *processes*
//! (this binary re-invoked with `--executor`) and routes shuffle blocks
//! through their TCP block services; queries return the same answers as
//! the default in-process threaded mode.
//!
//! Commands: `:load <path> <file>` copies a local file into the simulated
//! HDFS, `:explain CODE` documents a diagnostic code or optimizer rule,
//! `:rules` prints the rewrite-rule registry with per-rule fire counts for
//! this session (the optimizer's fire trace, fed by `OptimizerRuleFired`
//! events), `:profile <query>` runs the query under `EXPLAIN ANALYZE` and
//! prints the annotated plan (per-operator execution mode, rows, sampled
//! time), `:metrics` prints the engine-wide scheduler counters,
//! `:timeline` prints the per-job breakdown table (tasks, busy time,
//! latency percentiles, skew) from the collected event timeline, `:top`
//! prints one activity lane per process — the driver plus every executor
//! worker that has forwarded events — and `:quit` exits. Everything else
//! is JSONiq.

use rumble_repro::rumble::semantics::{explain, Severity, CODE_DOCS};
use rumble_repro::rumble::{analyze, Rumble};
use rumble_repro::sparklite::dataframe::rules::REGISTRY;
use rumble_repro::sparklite::{Event, SparkliteConf};
use std::io::{BufRead, Write};

const MAX_PRINTED: usize = 50;

/// Prints one diagnostic in the `warning[RBLW0001] at 1:5: …` shape, with
/// its help line when present.
fn print_diagnostic(d: &rumble_repro::rumble::semantics::Diagnostic) {
    eprintln!("{d}");
    if let Some(help) = &d.help {
        eprintln!("  help: {help}");
    }
}

/// Analyzes the query, prints every diagnostic, and reports whether any of
/// them was an error (in which case execution should be skipped).
fn lint(query: &str) -> bool {
    let diagnostics = analyze(query);
    for d in &diagnostics {
        print_diagnostic(d);
    }
    diagnostics.iter().any(|d| d.severity == Severity::Error)
}

fn explain_code(code: &str) {
    let code = code.trim().to_uppercase();
    match explain(&code) {
        Some(doc) => println!("{code}: {doc}"),
        None => {
            eprintln!("unknown diagnostic code '{code}'; known codes:");
            for (c, _) in CODE_DOCS {
                eprintln!("  {c}");
            }
        }
    }
}

/// The `--executor` entry point: this process is an executor worker spawned
/// by a driver shell's `--executors N`; serve it and exit.
fn run_executor_mode(args: &[String]) -> ! {
    let mut connect = None;
    let mut worker_id = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--executor" => {}
            "--connect" => connect = it.next().cloned(),
            "--worker-id" => worker_id = it.next().and_then(|v| v.parse::<u64>().ok()),
            other => {
                eprintln!("unknown executor flag {other}");
                std::process::exit(2);
            }
        }
    }
    let (Some(connect), Some(worker)) = (connect, worker_id) else {
        eprintln!("usage: --executor --connect ADDR --worker-id N");
        std::process::exit(2);
    };
    let runtime = std::sync::Arc::new(rumble_repro::rumble::dist::JsoniqTaskRuntime);
    match rumble_repro::sparklite::dist::run_worker(&connect, worker, runtime) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("executor worker {worker}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--executor") {
        run_executor_mode(&args);
    }
    match args.first().map(String::as_str) {
        Some("--explain") => {
            match args.get(1) {
                Some(code) => explain_code(code),
                None => {
                    println!("usage: --explain CODE; known codes:");
                    for (c, doc) in CODE_DOCS {
                        let summary = doc.split(':').next().unwrap_or(doc);
                        println!("  {c}  {summary}");
                    }
                }
            }
            return;
        }
        Some("--lint") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: --lint <query-file>");
                std::process::exit(2);
            };
            let query = match std::fs::read_to_string(path) {
                Ok(q) => q,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            let had_errors = lint(&query);
            std::process::exit(if had_errors { 1 } else { 0 });
        }
        _ => {}
    }

    // Remaining (interactive-mode) flags tune the optimizer for bisection.
    // Event collection is on so `:rules` can derive per-rule fire counts
    // from the OptimizerRuleFired stream.
    let mut conf = SparkliteConf::default().with_event_collection(true);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-opt" => conf = conf.with_optimizer(false),
            "--executors" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--executors needs a positive worker count");
                        std::process::exit(2);
                    });
                conf = conf.with_dist_processes(n);
            }
            a if a.starts_with("--disable-rule=") => {
                let id = a["--disable-rule=".len()..].trim().to_uppercase();
                if rumble_repro::sparklite::dataframe::rules::rule_by_id(&id).is_none() {
                    eprintln!("unknown rewrite rule '{id}'; known rules:");
                    for rule in REGISTRY {
                        eprintln!("  {}  {}", rule.id(), rule.name());
                    }
                    std::process::exit(2);
                }
                conf = conf.with_rule_disabled(id);
            }
            other => {
                eprintln!(
                    "unknown option '{other}' (expected --lint, --explain, --no-opt, \
                     --executors N, or --disable-rule=RBLO####)"
                );
                std::process::exit(2);
            }
        }
    }

    // The shell runs as a single long-lived application, so executors are
    // set up once (§5.4).
    let rumble = Rumble::with_conf(conf);
    if let Some(cluster) = rumble.sparklite().cluster() {
        println!(
            "distributed mode: {} executor worker process(es) serving shuffle blocks over TCP",
            cluster.num_workers()
        );
    }
    let opt = &rumble.sparklite().conf().optimizer;
    if !opt.enabled {
        println!("optimizer disabled (--no-opt): queries compile their raw logical plans");
    } else if !opt.disabled_rules.is_empty() {
        let ids: Vec<&str> = opt.disabled_rules.iter().map(String::as_str).collect();
        println!("optimizer rules disabled: {}", ids.join(", "));
    }
    println!(
        "rumble-rs shell — {} executor cores; :quit to exit, :load <hdfs-path> <local-file> to stage data, :explain CODE to document a diagnostic, :rules for the rewrite-rule registry and fire counts, :profile <query> for EXPLAIN ANALYZE, :metrics for scheduler counters, :timeline for the per-job breakdown, :top for per-process activity lanes",
        rumble.sparklite().executors()
    );
    let stdin = std::io::stdin();
    loop {
        print!("rumble> ");
        std::io::stdout().flush().expect("stdout is writable");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if let Some(code) = line.strip_prefix(":explain ") {
            explain_code(code);
            continue;
        }
        if line == ":metrics" {
            println!("{}", rumble.sparklite().metrics());
            continue;
        }
        if line == ":timeline" {
            // Per-job breakdown from the collected scheduler events; in
            // distributed mode this includes executor-forwarded streams.
            match rumble.sparklite().timeline() {
                Some(t) => print!("{}", t.render_job_table()),
                None => eprintln!("event collection is off"),
            }
            continue;
        }
        if line == ":top" {
            match rumble.sparklite().timeline() {
                Some(t) => print!("{}", t.render_top()),
                None => eprintln!("event collection is off"),
            }
            continue;
        }
        if line == ":rules" {
            // Per-rule fire counts for this session, derived from the
            // collected OptimizerRuleFired events (the optimizer's trace).
            let mut fires = std::collections::BTreeMap::<&str, u64>::new();
            if let Some(collector) = rumble.sparklite().event_collector() {
                for (_, ev) in collector.events() {
                    if let Event::OptimizerRuleFired { rule, .. } = ev {
                        *fires.entry(rule).or_insert(0) += 1;
                    }
                }
            }
            let opt = &rumble.sparklite().conf().optimizer;
            for rule in REGISTRY {
                let status = if !opt.enabled || opt.disabled_rules.contains(rule.id()) {
                    "off"
                } else {
                    "on "
                };
                println!(
                    "{} [{status}] {:<26} fires={:<5} preserves {}",
                    rule.id(),
                    rule.name(),
                    fires.get(rule.id()).copied().unwrap_or(0),
                    rule.preserves().describe(),
                );
                println!("          {}", rule.description());
            }
            continue;
        }
        if let Some(query) = line.strip_prefix(":profile ") {
            if lint(query) {
                continue;
            }
            match rumble.analyze_profile(query) {
                Ok(report) => print!("{report}"),
                Err(e) => eprintln!("{e}"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix(":load ") {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some(hdfs), Some(local)) => match std::fs::read_to_string(local) {
                    Ok(text) => {
                        let key = hdfs.strip_prefix("hdfs://").unwrap_or(hdfs);
                        rumble.sparklite().hdfs().delete(key);
                        match rumble.hdfs_put(key, &text) {
                            Ok(()) => println!("loaded {local} -> hdfs://{key}"),
                            Err(e) => eprintln!("load failed: {e}"),
                        }
                    }
                    Err(e) => eprintln!("cannot read {local}: {e}"),
                },
                _ => eprintln!("usage: :load <hdfs-path> <local-file>"),
            }
            continue;
        }
        // Static analysis first: print every finding; errors stop the query
        // before execution, warnings are advisory.
        if lint(line) {
            continue;
        }
        let started = std::time::Instant::now();
        match rumble.run_take(line, MAX_PRINTED + 1) {
            Ok(items) => {
                let truncated = items.len() > MAX_PRINTED;
                for item in items.iter().take(MAX_PRINTED) {
                    println!("{item}");
                }
                if truncated {
                    println!("… (output capped at {MAX_PRINTED} items)");
                }
                println!("-- {:.2?}", started.elapsed());
            }
            Err(e) => eprintln!("{e}"),
        }
    }
}
