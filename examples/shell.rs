//! An interactive JSONiq shell (§5.4: "Rumble is also available on a
//! shell … the output of each query is collected up to a configurable
//! maximum and printed").
//!
//! ```text
//! cargo run --release --example shell
//! rumble> for $x in parallelize(1 to 10) where $x mod 2 eq 0 return $x * $x
//! ```
//!
//! Commands: `:load <path> <file>` copies a local file into the simulated
//! HDFS, `:quit` exits. Everything else is JSONiq.

use rumble_repro::rumble::Rumble;
use std::io::{BufRead, Write};

const MAX_PRINTED: usize = 50;

fn main() {
    // The shell runs as a single long-lived application, so executors are
    // set up once (§5.4).
    let rumble = Rumble::default_local();
    println!(
        "rumble-rs shell — {} executor cores; :quit to exit, :load <hdfs-path> <local-file> to stage data",
        rumble.sparklite().executors()
    );
    let stdin = std::io::stdin();
    loop {
        print!("rumble> ");
        std::io::stdout().flush().expect("stdout is writable");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if let Some(rest) = line.strip_prefix(":load ") {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some(hdfs), Some(local)) => match std::fs::read_to_string(local) {
                    Ok(text) => {
                        let key = hdfs.strip_prefix("hdfs://").unwrap_or(hdfs);
                        rumble.sparklite().hdfs().delete(key);
                        match rumble.hdfs_put(key, &text) {
                            Ok(()) => println!("loaded {local} -> hdfs://{key}"),
                            Err(e) => eprintln!("load failed: {e}"),
                        }
                    }
                    Err(e) => eprintln!("cannot read {local}: {e}"),
                },
                _ => eprintln!("usage: :load <hdfs-path> <local-file>"),
            }
            continue;
        }
        let started = std::time::Instant::now();
        match rumble.run_take(line, MAX_PRINTED + 1) {
            Ok(items) => {
                let truncated = items.len() > MAX_PRINTED;
                for item in items.iter().take(MAX_PRINTED) {
                    println!("{item}");
                }
                if truncated {
                    println!("… (output capped at {MAX_PRINTED} items)");
                }
                println!("-- {:.2?}", started.elapsed());
            }
            Err(e) => eprintln!("{e}"),
        }
    }
}
