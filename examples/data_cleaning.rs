//! Data cleaning over messy JSON — the paper's §3.4 motivation.
//!
//! Generates a heterogeneous dataset (≈95% clean values, the rest absent,
//! null, stringly-typed or array-wrapped), shows how a DataFrame with
//! inferred schema destroys the type information (Figure 6), then cleans
//! the data with a single JSONiq query that normalizes every field.
//!
//! ```text
//! cargo run --release --example data_cleaning
//! ```

use rumble_repro::datagen::{heterogeneous, put_dataset, DEFAULT_SEED};
use rumble_repro::rumble::Rumble;
use rumble_repro::sparklite::sql::read_json;
use rumble_repro::sparklite::{SparkliteConf, SparkliteContext};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = SparkliteContext::new(SparkliteConf::default());
    put_dataset(&sc, "hdfs:///messy.json", &heterogeneous::generate(5_000, DEFAULT_SEED))?;

    // --- What Spark SQL sees (Figure 6): heterogeneity collapses. ---
    let df = read_json(&sc, "hdfs:///messy.json")?;
    println!("DataFrame schema after inference (note the stringly types):");
    for f in df.schema().fields() {
        println!("  {}: {:?}", f.name, f.dtype);
    }
    println!();

    // --- What JSONiq sees: the original types, cleanable on the fly. ---
    let rumble = Rumble::new(sc);
    let cleaned = rumble.compile(
        r#"
        for $r in json-file("hdfs:///messy.json")
        let $id := if ($r.id instance of integer) then $r.id
                   else if ($r.id instance of string) then ($r.id cast as integer)
                   else ()
        where exists($id)  (: drop records whose id is unrecoverable :)
        let $name := ($r.name[], $r.name)[1]
        let $value := if ($r.value instance of string)
                      then ($r.value cast as decimal)
                      else if ($r.value instance of null) then ()
                      else $r.value
        let $tags := if ($r.tags instance of array) then $r.tags[] else $r.tags
        return {
            "id": $id,
            "name": ($name, "anonymous")[1],
            "value": ($value, 0)[1],
            "tags": [ distinct-values($tags) ],
            "has_nested": exists($r.nested)
        }
    "#,
    )?;

    let n = cleaned.write_json_lines("hdfs:///clean.json")?;
    println!("cleaned {n} records (written back to hdfs:///clean.json in parallel)");

    // Quality report over the cleaned collection.
    let report = rumble.run(
        r#"
        let $rows := json-file("hdfs:///clean.json")
        return {
            "records": count($rows),
            "avg_value": avg(for $r in $rows return $r.value),
            "tagged": count(for $r in $rows where size($r.tags) gt 0 return $r)
        }
    "#,
    )?;
    println!("report: {}", report[0]);
    Ok(())
}
