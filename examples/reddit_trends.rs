//! Semi-structured analytics on the Reddit-like dataset (the paper's §6.5
//! and §6.6 workload), demonstrating schema-drift-proof queries: `edited`
//! is sometimes a boolean, sometimes a timestamp; `gilded` is often absent.
//!
//! ```text
//! cargo run --release --example reddit_trends [objects]
//! ```

use rumble_repro::datagen::{put_dataset, reddit, DEFAULT_SEED};
use rumble_repro::rumble::Rumble;
use rumble_repro::sparklite::{SparkliteConf, SparkliteContext};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let objects: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let sc = SparkliteContext::new(SparkliteConf::default());
    println!("generating {objects} reddit comments …");
    put_dataset(&sc, "hdfs:///reddit.json", &reddit::generate(objects, DEFAULT_SEED))?;
    let rumble = Rumble::new(sc);

    // The Fig. 14/15 highly selective filter.
    let t = Instant::now();
    let needles = rumble.compile(&format!(
        r#"for $c in json-file("hdfs:///reddit.json")
           where contains($c.body, "{}")
           return $c"#,
        reddit::NEEDLE
    ))?;
    println!(
        "comments mentioning {:?}: {} ({:.2?})",
        reddit::NEEDLE,
        needles.count()?,
        t.elapsed()
    );

    // Subreddit engagement, robust to the heterogeneous `edited` field:
    // booleans and timestamps both flow through `exists`/`instance of`.
    let t = Instant::now();
    let per_sub = rumble.run_take(
        r#"
        for $c in json-file("hdfs:///reddit.json")
        let $edited := if ($c.edited instance of integer) then 1
                       else if ($c.edited instance of boolean and $c.edited) then 1
                       else 0
        group by $s := $c.subreddit
        let $n := count($c)
        order by $n descending
        return {
            "subreddit": $s,
            "comments": $n,
            "avg_score": round(avg(for $x in $c return $x.score), 1),
            "edit_rate": round(sum($edited) div $n, 3)
        }
    "#,
        5,
    )?;
    println!("\nbusiest subreddits ({:.2?}):", t.elapsed());
    for i in &per_sub {
        println!("  {i}");
    }

    // Schema drift: gilded only exists on newer comments.
    let drift = rumble.run(
        r#"
        let $all := count(json-file("hdfs:///reddit.json"))
        let $with := count(
            for $c in json-file("hdfs:///reddit.json")
            where exists($c.gilded)
            return $c)
        return { "comments": $all, "with_gilded": $with,
                 "share": round($with div $all, 3) }
    "#,
    )?;
    println!("\nschema drift: {}", drift[0]);
    Ok(())
}
